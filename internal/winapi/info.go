package winapi

import (
	"fmt"
	"strings"

	"autovac/internal/taint"
)

// registerInfo adds the host-information and time/randomness APIs that
// determinism analysis (§IV-C) classifies identifier roots by:
// semantic-known APIs (computer name, volume serial) mark
// algorithm-deterministic identifiers; random APIs (tick count,
// performance counter) mark non-reproducible ones.
func registerInfo(r *Registry) {
	r.Register(Spec{
		Name: "GetComputerNameA", NArgs: 2,
		Label: Label{IdentifierArg: -1, Class: ClassSemantic},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name := m.Env().Identity().ComputerName
			if err := m.WriteCString(args[0].Value, clip(name, args[1].Value), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetUserNameA", NArgs: 2,
		Label: Label{IdentifierArg: -1, Class: ClassSemantic},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name := m.Env().Identity().UserName
			if err := m.WriteCString(args[0].Value, clip(name, args[1].Value), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetVolumeInformationA", NArgs: 1,
		Label: Label{IdentifierArg: -1, Class: ClassSemantic},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			serial := m.Env().Identity().VolumeSerial
			if err := m.WriteWord(args[0].Value, serial, src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "gethostname", NArgs: 2,
		Label: Label{IdentifierArg: -1, Class: ClassSemantic},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name := strings.ToLower(m.Env().Identity().ComputerName)
			if err := m.WriteCString(args[0].Value, clip(name, args[1].Value), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: 0, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetTickCount", NArgs: 0,
		Label: Label{IdentifierArg: -1, Class: ClassRandom},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: m.Rand(), RetTaint: src, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "QueryPerformanceCounter", NArgs: 1,
		Label: Label{IdentifierArg: -1, Class: ClassRandom},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			if err := m.WriteWord(args[0].Value, m.Rand(), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "rand", NArgs: 0,
		Label: Label{IdentifierArg: -1, Class: ClassRandom},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: m.Rand() & 0x7FFF, RetTaint: src, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetLastError", NArgs: 0,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			// The result carries the taint of the call that set the
			// error, so error-checking branches count as tainted
			// predicates; the emulator supplies that taint via RetTaint
			// wiring (see emu's lastErrTaint).
			return Outcome{Ret: uint32(m.Env().LastError()), Success: true}, nil
		},
	})
}

// registerStrings adds the C-runtime string helpers malware composes
// identifiers with. They carry no label; their role is taint
// propagation through memory (the "data propagation" of §III-B) and,
// in the instruction trace, the def-use links backward slicing follows.
func registerStrings(r *Registry) {
	r.Register(Spec{
		Name: "lstrcmpA", NArgs: 2,
		Label: Label{IdentifierArg: -1, StrArgs: []int{0, 1}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			a, ta, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			b, tb, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: cmpRet(strings.Compare(a, b)), RetTaint: ta.Union(tb), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "lstrcmpiA", NArgs: 2,
		Label: Label{IdentifierArg: -1, StrArgs: []int{0, 1}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			a, ta, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			b, tb, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			cmp := strings.Compare(strings.ToLower(a), strings.ToLower(b))
			return Outcome{Ret: cmpRet(cmp), RetTaint: ta.Union(tb), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "lstrcpyA", NArgs: 2,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			s, t, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			if err := m.WriteCString(args[0].Value, s, t); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: args[0].Value, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "lstrcatA", NArgs: 2,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			dst, td, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			s, ts, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			// Append: write only the suffix (plus NUL) so the existing
			// prefix bytes keep their own per-byte provenance.
			if err := m.WriteCString(args[0].Value+uint32(len(dst)), s, ts); err != nil {
				return Outcome{}, err
			}
			_ = td
			return Outcome{Ret: args[0].Value, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "lstrlenA", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			s, t, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: uint32(len(s)), RetTaint: t, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "_snprintf", NArgs: Variadic,
		Label: Label{IdentifierArg: -1},
		Impl:  snprintfImpl(true),
	})

	r.Register(Spec{
		Name: "wsprintfA", NArgs: Variadic,
		Label: Label{IdentifierArg: -1},
		Impl:  snprintfImpl(false),
	})

	r.Register(Spec{
		Name: "_itoa", NArgs: 3,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			var s string
			switch args[2].Value {
			case 16:
				s = fmt.Sprintf("%x", args[0].Value)
			default:
				s = fmt.Sprintf("%d", args[0].Value)
			}
			if err := m.WriteCString(args[1].Value, s, args[0].Taint); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: args[1].Value, Success: true}, nil
		},
	})
}

// snprintfImpl builds the formatted-print implementation. When sized is
// true the signature is (buf, size, fmt, args...); otherwise
// (buf, fmt, args...). Output is written segment by segment — literal
// runs carry the format string's taint, conversion runs carry the
// consumed argument's taint — preserving per-byte provenance for the
// partial-static identifier classification (§IV-C).
func snprintfImpl(sized bool) Impl {
	return func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
		base := 2
		if !sized {
			base = 1
		}
		if len(args) < base+1 {
			return Outcome{}, fmt.Errorf("winapi: snprintf: need at least %d args, got %d", base+1, len(args))
		}
		buf := args[0].Value
		format, tfmt, err := m.ReadCString(args[base].Value)
		if err != nil {
			return Outcome{}, err
		}
		varargs := args[base+1:]

		type segment struct {
			text  string
			taint taint.Set
		}
		var segs []segment
		var lit []byte
		flushLit := func() {
			if len(lit) > 0 {
				segs = append(segs, segment{string(lit), tfmt})
				lit = nil
			}
		}
		next := 0
		takeArg := func() (Arg, error) {
			if next >= len(varargs) {
				return Arg{}, fmt.Errorf("winapi: snprintf: format %q consumes more than %d args", format, len(varargs))
			}
			a := varargs[next]
			next++
			return a, nil
		}
		for i := 0; i < len(format); i++ {
			c := format[i]
			if c != '%' || i+1 >= len(format) {
				lit = append(lit, c)
				continue
			}
			i++
			verb := format[i]
			switch verb {
			case '%':
				lit = append(lit, '%')
			case 's':
				a, err := takeArg()
				if err != nil {
					return Outcome{}, err
				}
				s, ts, err := m.ReadCString(a.Value)
				if err != nil {
					return Outcome{}, err
				}
				flushLit()
				segs = append(segs, segment{s, ts.Union(a.Taint)})
			case 'd', 'u':
				a, err := takeArg()
				if err != nil {
					return Outcome{}, err
				}
				flushLit()
				segs = append(segs, segment{fmt.Sprintf("%d", a.Value), a.Taint})
			case 'x', 'X':
				a, err := takeArg()
				if err != nil {
					return Outcome{}, err
				}
				flushLit()
				segs = append(segs, segment{fmt.Sprintf("%x", a.Value), a.Taint})
			case 'c':
				a, err := takeArg()
				if err != nil {
					return Outcome{}, err
				}
				flushLit()
				segs = append(segs, segment{string(rune(a.Value & 0xFF)), a.Taint})
			default:
				lit = append(lit, '%', verb)
			}
		}
		flushLit()

		// Assemble, honouring the size limit when present.
		limit := uint32(0xFFFFFFFF)
		if sized && args[1].Value > 0 {
			limit = args[1].Value - 1 // room for NUL
		}
		total := uint32(0)
		off := buf
		for _, seg := range segs {
			text := seg.text
			if total+uint32(len(text)) > limit {
				text = text[:limit-total]
			}
			if len(text) > 0 {
				if err := m.WriteBytes(off, []byte(text), seg.taint); err != nil {
					return Outcome{}, err
				}
				off += uint32(len(text))
				total += uint32(len(text))
			}
			if total >= limit {
				break
			}
		}
		if err := m.WriteBytes(off, []byte{0}, taint.Set{}); err != nil {
			return Outcome{}, err
		}
		return Outcome{Ret: total, Success: true}, nil
	}
}

// cmpRet maps a Go comparison to the C convention.
func cmpRet(c int) uint32 {
	switch {
	case c < 0:
		return 0xFFFFFFFF
	case c > 0:
		return 1
	default:
		return 0
	}
}
