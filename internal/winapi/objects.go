package winapi

import (
	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// registerMutex adds the mutex APIs. The paper's Table I uses OpenMutex
// as the canonical "taint the return value" example: success is a valid
// handle in EAX; failure is NULL with GetLastError = 0x02.
func registerMutex(r *Registry) {
	r.Register(Spec{
		Name: "CreateMutexA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindMutex, Op: winenv.OpCreate,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindMutex, winenv.OpCreate, name, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			// Success even when the mutex existed; GetLastError then
			// reports ERROR_ALREADY_EXISTS (set by winenv).
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "OpenMutexA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindMutex, Op: winenv.OpOpen,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrFileNotFound,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindMutex, winenv.OpOpen, name, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "ReleaseMutex", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 1, Success: true}, nil
		},
	})
}

// registerWindow adds the GUI-window APIs (adware's resource class in
// Table V).
func registerWindow(r *Registry) {
	r.Register(Spec{
		Name: "FindWindowA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindWindow, Op: winenv.OpOpen,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrWindowNotFound,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			class, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindWindow, winenv.OpOpen, class, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "CreateWindowExA", NArgs: 2,
		Label: Label{
			Resource: winenv.KindWindow, Op: winenv.OpCreate,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0, 1}, StrArgs: []int{0, 1},
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			class, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			// Creating a window whose class was registered earlier (or
			// whose name already exists) opens another instance.
			res := doResource(m, winenv.KindWindow, winenv.OpCreate, class, nil)
			if !res.OK && res.Err == winenv.ErrAlreadyExists {
				res = doResource(m, winenv.KindWindow, winenv.OpOpen, class, nil)
			}
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "RegisterClassA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindWindow, Op: winenv.OpCreate,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrAlreadyExists,
			SuccessRet: 0xC001,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			class, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindWindow, winenv.OpCreate, class, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: 0xC001, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "ShowWindow", NArgs: 2,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "DestroyWindow", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindWindow {
				return Outcome{Ret: 0}, nil
			}
			res := doResource(m, winenv.KindWindow, winenv.OpDelete, name, nil)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})
}

// registerLibrary adds the loadable-module APIs.
func registerLibrary(r *Registry) {
	r.Register(Spec{
		Name: "LoadLibraryA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindLibrary, Op: winenv.OpOpen,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrModuleNotFound,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindLibrary, winenv.OpOpen, name, nil)
			if !res.OK && res.Err == winenv.ErrModuleNotFound {
				// Loading a module that is not registered but exists on
				// disk (a dropped DLL) registers and loads it.
				if m.Env().Exists(winenv.KindFile, name) {
					res = doResource(m, winenv.KindLibrary, winenv.OpCreate, baseName(name), nil)
				}
			}
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetModuleHandleA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindLibrary, Op: winenv.OpQuery,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrModuleNotFound,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindLibrary, winenv.OpQuery, name, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			// Query does not allocate a handle; synthesize a stable
			// module base from the name.
			return Outcome{Ret: 0x10000000 | (hash32(name) & 0x0FFFF000), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetProcAddress", NArgs: 2,
		Label: Label{IdentifierArg: -1, StrArgs: []int{1}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			proc, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: ProcAddr(proc), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "FreeLibrary", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			m.Env().CloseHandle(winenv.Handle(args[0].Value))
			return Outcome{Ret: 1, Success: true}, nil
		},
	})
}

// hash32 is FNV-1a, used to synthesize stable fake addresses.
func hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
