package winapi

import (
	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// socketError is the winsock SOCKET_ERROR return (-1).
const socketError uint32 = 0xFFFFFFFF

// registerNet adds the winsock/WinINet subset. Network APIs carry no
// resource label (they are not vaccine material — a C&C address is not a
// local system resource) but their presence in the normal trace and
// absence in the mutated trace is exactly what the Type-II
// "Disable Massive Network Behavior" classifier looks for.
func registerNet(r *Registry) {
	r.Register(Spec{
		Name: "gethostbyname", NArgs: 1,
		Label: Label{IdentifierArg: -1, StrArgs: []int{0}, StaticArgs: []int{0}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			host, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			if _, ok := m.Env().Net().Resolve(m.Principal(), host); !ok {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: 0x30000000 | (hash32(host) & 0x0FFFFFF0), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "socket", NArgs: 0,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			// Socket allocation always succeeds; the connect decides.
			return Outcome{Ret: 0x7000 + m.Rand()%0x100*4, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "connect", NArgs: 2,
		Label: Label{IdentifierArg: -1, StrArgs: []int{1}, StaticArgs: []int{1}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			target, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			if !m.Env().Net().BindConnect(m.Principal(), winenv.Handle(args[0].Value), target) {
				return Outcome{Ret: socketError}, nil
			}
			return Outcome{Ret: 0, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "send", NArgs: 3,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			n := args[2].Value
			m.Env().Net().RecordSend(m.Principal(), int(n))
			return Outcome{Ret: n, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "recv", NArgs: 3,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			n := args[2].Value
			if n > 64 {
				n = 64
			}
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(m.Rand())
			}
			if n > 0 {
				if err := m.WriteBytes(args[1].Value, payload, src); err != nil {
					return Outcome{}, err
				}
			}
			m.Env().Net().RecordRecv(m.Principal(), int(n))
			return Outcome{Ret: n, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "closesocket", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			m.Env().Net().CloseSocket(winenv.Handle(args[0].Value))
			return Outcome{Ret: 0, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "InternetOpenA", NArgs: 1,
		Label: Label{IdentifierArg: -1, StrArgs: []int{0}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 0x1E7, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "InternetOpenUrlA", NArgs: 2,
		Label: Label{IdentifierArg: -1, StrArgs: []int{1}, StaticArgs: []int{1}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			url, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			h, ok := m.Env().Net().HTTPGet(m.Principal(), url)
			if !ok {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(h), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "InternetReadFile", NArgs: 3,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			n := args[2].Value
			if n > 64 {
				n = 64
			}
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(m.Rand())
			}
			if n > 0 {
				if err := m.WriteBytes(args[1].Value, payload, src); err != nil {
					return Outcome{}, err
				}
			}
			m.Env().Net().RecordRecv(m.Principal(), int(n))
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "InternetCloseHandle", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 1, Success: true}, nil
		},
	})
}

// NetworkAPIs lists the API names the Type-II classifier treats as
// network behaviour.
func NetworkAPIs() []string {
	return []string{
		"gethostbyname", "socket", "connect", "send", "recv",
		"InternetOpenA", "InternetOpenUrlA", "InternetReadFile",
	}
}
