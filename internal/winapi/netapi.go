package winapi

import (
	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// socketError is the winsock SOCKET_ERROR return (-1).
const socketError uint32 = 0xFFFFFFFF

// maxSendCapture caps how many request bytes a scripted responder sees.
const maxSendCapture = 256

// registerNet adds the winsock/WinINet subset.
//
// With domainLabels false (the Standard registry), network APIs carry no
// resource label — a C&C address is not a local system resource — but
// their presence in the normal trace and absence in the mutated trace is
// exactly what the Type-II "Disable Massive Network Behavior" classifier
// looks for. This keeps the legacy corpus byte-identical.
//
// With domainLabels true (the StandardC2 registry, selected when a c2
// scenario is attached), the name-taking APIs are labelled with
// winenv.KindDomain so network identifiers become candidate vaccine
// material: gethostbyname's hostname, connect's host:port target, and
// InternetOpenUrlA's URL are resource identifiers with winsock
// success/failure conventions.
//
// Independent of labelling, the byte-level payload paths (send/recv/
// InternetReadFile) consult the scripted responder only when one is
// attached; unscripted runs keep the legacy synthetic payloads,
// including the deterministic PRNG byte stream.
func registerNet(r *Registry, domainLabels bool) {
	hostLabel := Label{IdentifierArg: -1, StrArgs: []int{0}, StaticArgs: []int{0}}
	if domainLabels {
		hostLabel = Label{
			Resource: winenv.KindDomain, Op: winenv.OpOpen,
			IdentifierArg: 0, Taint: TaintReturn,
			StrArgs: []int{0}, StaticArgs: []int{0},
			SuccessRet: 0x30000010, FailureRet: 0,
			FailureErr: winenv.ErrHostNotFound,
		}
	}
	r.Register(Spec{
		Name: "gethostbyname", NArgs: 1,
		Label: hostLabel,
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			host, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			if _, ok := m.Env().Net().Resolve(m.Principal(), host); !ok {
				if domainLabels {
					m.Env().SetLastError(winenv.ErrHostNotFound)
				}
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: 0x30000000 | (hash32(host) & 0x0FFFFFF0), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "socket", NArgs: 0,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			// Socket allocation always succeeds; the connect decides.
			return Outcome{Ret: 0x7000 + m.Rand()%0x100*4, Success: true}, nil
		},
	})

	connectLabel := Label{IdentifierArg: -1, StrArgs: []int{1}, StaticArgs: []int{1}}
	if domainLabels {
		connectLabel = Label{
			Resource: winenv.KindDomain, Op: winenv.OpOpen,
			IdentifierArg: 1, Taint: TaintReturn,
			StrArgs: []int{1}, StaticArgs: []int{1},
			SuccessRet: 0, FailureRet: socketError,
			FailureErr: winenv.ErrConnRefused,
		}
	}
	r.Register(Spec{
		Name: "connect", NArgs: 2,
		Label: connectLabel,
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			target, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			if !m.Env().Net().BindConnect(m.Principal(), winenv.Handle(args[0].Value), target) {
				if domainLabels {
					m.Env().SetLastError(winenv.ErrConnRefused)
				}
				return Outcome{Ret: socketError}, nil
			}
			return Outcome{Ret: 0, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "send", NArgs: 3,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			n := args[2].Value
			net := m.Env().Net()
			if net.HasResponder() {
				// Scripted dialogue: expose the actual request bytes so
				// beacon protocols can match on them.
				cap := n
				if cap > maxSendCapture {
					cap = maxSendCapture
				}
				data, _, err := m.ReadBytes(args[1].Value, cap)
				if err != nil {
					return Outcome{}, err
				}
				if !net.SendPayload(m.Principal(), winenv.Handle(args[0].Value), data) {
					return Outcome{Ret: socketError}, nil
				}
				return Outcome{Ret: n, Success: true}, nil
			}
			net.RecordSend(m.Principal(), int(n))
			return Outcome{Ret: n, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "recv", NArgs: 3,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			n := args[2].Value
			if n > 64 {
				n = 64
			}
			net := m.Env().Net()
			if net.HasResponder() {
				// Scripted dialogue: the responder decides the reply. The
				// return value is the byte count (0 = the C2 hung up),
				// which is what beacon-gated samples branch on.
				data, ok, handled := net.RecvPayload(m.Principal(), winenv.Handle(args[0].Value), int(n))
				if handled {
					if !ok {
						return Outcome{Ret: socketError}, nil
					}
					if len(data) > 0 {
						if err := m.WriteBytes(args[1].Value, data, src); err != nil {
							return Outcome{}, err
						}
					}
					return Outcome{Ret: uint32(len(data)), Success: len(data) > 0}, nil
				}
			}
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(m.Rand())
			}
			if n > 0 {
				if err := m.WriteBytes(args[1].Value, payload, src); err != nil {
					return Outcome{}, err
				}
			}
			net.RecordRecv(m.Principal(), int(n))
			return Outcome{Ret: n, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "closesocket", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			m.Env().Net().CloseSocket(winenv.Handle(args[0].Value))
			return Outcome{Ret: 0, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "InternetOpenA", NArgs: 1,
		Label: Label{IdentifierArg: -1, StrArgs: []int{0}},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 0x1E7, Success: true}, nil
		},
	})

	urlLabel := Label{IdentifierArg: -1, StrArgs: []int{1}, StaticArgs: []int{1}}
	if domainLabels {
		urlLabel = Label{
			Resource: winenv.KindDomain, Op: winenv.OpOpen,
			IdentifierArg: 1, Taint: TaintReturn,
			StrArgs: []int{1}, StaticArgs: []int{1},
			SuccessRet: 0x1EB, FailureRet: 0,
			FailureErr: winenv.ErrHostNotFound,
		}
	}
	r.Register(Spec{
		Name: "InternetOpenUrlA", NArgs: 2,
		Label: urlLabel,
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			url, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			h, ok := m.Env().Net().HTTPGet(m.Principal(), url)
			if !ok {
				if domainLabels {
					m.Env().SetLastError(winenv.ErrHostNotFound)
				}
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(h), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "InternetReadFile", NArgs: 3,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			n := args[2].Value
			if n > 64 {
				n = 64
			}
			net := m.Env().Net()
			if net.HasResponder() {
				// Scripted staged fetch: return the byte count so droppers
				// observe a locked/exhausted stage as a zero-length read.
				data, ok, handled := net.RecvPayload(m.Principal(), winenv.Handle(args[0].Value), int(n))
				if handled {
					if !ok {
						return Outcome{Ret: 0}, nil
					}
					if len(data) > 0 {
						if err := m.WriteBytes(args[1].Value, data, src); err != nil {
							return Outcome{}, err
						}
					}
					return Outcome{Ret: uint32(len(data)), Success: len(data) > 0}, nil
				}
			}
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(m.Rand())
			}
			if n > 0 {
				if err := m.WriteBytes(args[1].Value, payload, src); err != nil {
					return Outcome{}, err
				}
			}
			net.RecordRecv(m.Principal(), int(n))
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "InternetCloseHandle", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 1, Success: true}, nil
		},
	})
}

// NetworkAPIs lists the API names the Type-II classifier treats as
// network behaviour.
func NetworkAPIs() []string {
	return []string{
		"gethostbyname", "socket", "connect", "send", "recv",
		"InternetOpenA", "InternetOpenUrlA", "InternetReadFile",
	}
}

// DomainAPIs lists the name-taking network APIs that carry a KindDomain
// label in the StandardC2 registry.
func DomainAPIs() []string {
	return []string{"gethostbyname", "connect", "InternetOpenUrlA"}
}
