package winapi

import (
	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// Registry-status success code (ERROR_SUCCESS); registry APIs return a
// status rather than a handle, so their success convention is ret == 0 —
// the inverted polarity the paper's API-labelling study has to record
// per-API.
const regSuccess uint32 = 0

func registerRegistry(r *Registry) {
	r.Register(Spec{
		Name: "RegCreateKeyExA", NArgs: 2,
		Label: Label{
			Resource: winenv.KindRegistry, Op: winenv.OpCreate,
			IdentifierArg: 0, Taint: TaintArg, TaintArgIndex: 1,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: uint32(winenv.ErrAccessDenied), FailureErr: winenv.ErrAccessDenied,
			SuccessRet: regSuccess,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			path, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindRegistry, winenv.OpCreate, path, nil)
			if !res.OK && res.Err == winenv.ErrAlreadyExists {
				// RegCreateKeyEx opens the key when it already exists.
				res = doResource(m, winenv.KindRegistry, winenv.OpOpen, path, nil)
			}
			if !res.OK {
				return Outcome{Ret: uint32(res.Err)}, nil
			}
			if err := m.WriteWord(args[1].Value, uint32(res.Handle), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: regSuccess, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "RegOpenKeyExA", NArgs: 2,
		Label: Label{
			Resource: winenv.KindRegistry, Op: winenv.OpOpen,
			IdentifierArg: 0, Taint: TaintArg, TaintArgIndex: 1,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: uint32(winenv.ErrFileNotFound), FailureErr: winenv.ErrFileNotFound,
			SuccessRet: regSuccess,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			path, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindRegistry, winenv.OpOpen, path, nil)
			if !res.OK {
				return Outcome{Ret: uint32(res.Err)}, nil
			}
			if err := m.WriteWord(args[1].Value, uint32(res.Handle), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: regSuccess, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "RegQueryValueExA", NArgs: 4,
		Label: Label{
			Resource: winenv.KindRegistry, Op: winenv.OpRead,
			IdentifierArg: 0, IdentifierViaHandle: true, ValueNameArg: 1,
			Taint:      TaintReturn,
			StaticArgs: []int{1}, StrArgs: []int{1},
			FailureRet: uint32(winenv.ErrFileNotFound), FailureErr: winenv.ErrFileNotFound,
			SuccessRet: regSuccess,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, keyPath, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindRegistry {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: uint32(winenv.ErrInvalidHandle)}, nil
			}
			valueName, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			full := keyPath + `\` + valueName
			res := doResource(m, winenv.KindRegistry, winenv.OpRead, full, nil)
			if !res.OK {
				return Outcome{Ret: uint32(res.Err), Identifier: full}, nil
			}
			n := args[3].Value
			if uint32(len(res.Data)) < n {
				n = uint32(len(res.Data))
			}
			if n > 0 {
				if err := m.WriteBytes(args[2].Value, res.Data[:n], src); err != nil {
					return Outcome{}, err
				}
			}
			return Outcome{Ret: regSuccess, Success: true, Identifier: full}, nil
		},
	})

	r.Register(Spec{
		Name: "RegSetValueExA", NArgs: 4,
		Label: Label{
			Resource: winenv.KindRegistry, Op: winenv.OpWrite,
			IdentifierArg: 0, IdentifierViaHandle: true, ValueNameArg: 1,
			Taint:      TaintReturn,
			StaticArgs: []int{1}, StrArgs: []int{1},
			FailureRet: uint32(winenv.ErrAccessDenied), FailureErr: winenv.ErrAccessDenied,
			SuccessRet: regSuccess,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, keyPath, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindRegistry {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: uint32(winenv.ErrInvalidHandle)}, nil
			}
			valueName, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			data, _, err := m.ReadBytes(args[2].Value, args[3].Value)
			if err != nil {
				return Outcome{}, err
			}
			full := keyPath + `\` + valueName
			var res winenv.Result
			if m.Env().Exists(winenv.KindRegistry, full) {
				res = doResource(m, winenv.KindRegistry, winenv.OpWrite, full, data)
			} else {
				res = doResource(m, winenv.KindRegistry, winenv.OpCreate, full, data)
			}
			if !res.OK {
				return Outcome{Ret: uint32(res.Err), Identifier: full}, nil
			}
			return Outcome{Ret: regSuccess, Success: true, Identifier: full}, nil
		},
	})

	r.Register(Spec{
		Name: "RegDeleteKeyA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindRegistry, Op: winenv.OpDelete,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: uint32(winenv.ErrAccessDenied), FailureErr: winenv.ErrAccessDenied,
			SuccessRet: regSuccess,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			path, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindRegistry, winenv.OpDelete, path, nil)
			if !res.OK {
				return Outcome{Ret: uint32(res.Err)}, nil
			}
			return Outcome{Ret: regSuccess, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "RegCloseKey", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			ok := m.Env().CloseHandle(winenv.Handle(args[0].Value))
			if !ok {
				return Outcome{Ret: uint32(winenv.ErrInvalidHandle)}, nil
			}
			return Outcome{Ret: regSuccess, Success: true}, nil
		},
	})
}
