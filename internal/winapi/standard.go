package winapi

// Standard assembles the full labelled API set: every file, registry,
// mutex, process, service, window, library, network, host-information,
// and string API this reproduction's programs call. It is the analogue
// of the paper's examined-and-labelled Windows API table (§III-A).
// Network APIs carry no resource label here, keeping legacy corpus
// traces byte-identical.
func Standard() *Registry {
	return standard(false)
}

// StandardC2 is Standard with the name-taking network APIs additionally
// labelled as winenv.KindDomain resources (see registerNet). The
// pipeline selects it when a c2 scenario is attached, promoting C2
// hostnames, host:port targets, and URLs to candidate vaccine material.
func StandardC2() *Registry {
	return standard(true)
}

func standard(domainLabels bool) *Registry {
	r := NewRegistry()
	registerFile(r)
	registerRegistry(r)
	registerMutex(r)
	registerProcess(r)
	registerService(r)
	registerWindow(r)
	registerLibrary(r)
	registerNet(r, domainLabels)
	registerInfo(r)
	registerStrings(r)
	return r
}

// TerminationAPIs lists the self-termination APIs whose appearance in
// the mutated trace's difference set marks full immunization (§IV-B).
func TerminationAPIs() []string {
	return []string{"ExitProcess", "ExitThread", "TerminateProcess"}
}

// KernelInjectionAPIs lists the APIs whose loss marks Type-I partial
// immunization (disable kernel injection).
func KernelInjectionAPIs() []string {
	return []string{"OpenSCManagerA", "CreateServiceA", "StartServiceA"}
}

// ProcessInjectionAPIs lists the APIs whose loss marks Type-IV partial
// immunization (disable benign process injection).
func ProcessInjectionAPIs() []string {
	return []string{"OpenProcessByNameA", "WriteProcessMemory", "CreateRemoteThread"}
}
