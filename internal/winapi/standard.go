package winapi

// Standard assembles the full labelled API set: every file, registry,
// mutex, process, service, window, library, network, host-information,
// and string API this reproduction's programs call. It is the analogue
// of the paper's examined-and-labelled Windows API table (§III-A).
func Standard() *Registry {
	r := NewRegistry()
	registerFile(r)
	registerRegistry(r)
	registerMutex(r)
	registerProcess(r)
	registerService(r)
	registerWindow(r)
	registerLibrary(r)
	registerNet(r)
	registerInfo(r)
	registerStrings(r)
	return r
}

// TerminationAPIs lists the self-termination APIs whose appearance in
// the mutated trace's difference set marks full immunization (§IV-B).
func TerminationAPIs() []string {
	return []string{"ExitProcess", "ExitThread", "TerminateProcess"}
}

// KernelInjectionAPIs lists the APIs whose loss marks Type-I partial
// immunization (disable kernel injection).
func KernelInjectionAPIs() []string {
	return []string{"OpenSCManagerA", "CreateServiceA", "StartServiceA"}
}

// ProcessInjectionAPIs lists the APIs whose loss marks Type-IV partial
// immunization (disable benign process injection).
func ProcessInjectionAPIs() []string {
	return []string{"OpenProcessByNameA", "WriteProcessMemory", "CreateRemoteThread"}
}
