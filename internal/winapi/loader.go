package winapi

// ProcAddr returns the synthetic resolved address of a named API — the
// value GetProcAddress has always produced for it. It is the single
// address→API binding shared by the emulator's loader surface
// (emu's export tables map each export name to ProcAddr(name)), the
// CALLAPIR dispatcher, and the static API-surface recovery pass; every
// consumer must use this function so a hash-walked address and a
// GetProcAddress result resolve identically.
//
// The formula is frozen: changing it would change GetProcAddress's
// return values and break the golden corpus hash.
func ProcAddr(name string) uint32 {
	return 0x20000000 | (hash32(name) & 0x0FFFFFF0)
}
