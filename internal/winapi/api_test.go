package winapi

import (
	"strings"
	"testing"

	"autovac/internal/taint"
	"autovac/internal/winenv"
)

func TestStandardRegistry(t *testing.T) {
	r := Standard()
	if r.Len() < 60 {
		t.Errorf("Standard registry has %d APIs, want >= 60", r.Len())
	}
	res := r.ResourceAPIs()
	if len(res) < 25 {
		t.Errorf("resource-labelled APIs = %d, want >= 25", len(res))
	}
	// Registration order is stable and Names matches Len.
	if len(r.Names()) != r.Len() {
		t.Error("Names()/Len() mismatch")
	}
	// Table I's two canonical examples are present with the documented
	// labelling.
	om, ok := r.Lookup("OpenMutexA")
	if !ok {
		t.Fatal("OpenMutexA missing")
	}
	if om.Label.Resource != winenv.KindMutex || om.Label.Taint != TaintReturn ||
		om.Label.IdentifierArg != 0 || om.Label.FailureErr != winenv.ErrFileNotFound {
		t.Errorf("OpenMutexA label = %+v", om.Label)
	}
	rf, ok := r.Lookup("ReadFile")
	if !ok {
		t.Fatal("ReadFile missing")
	}
	if rf.Label.Resource != winenv.KindFile || !rf.Label.IdentifierViaHandle {
		t.Errorf("ReadFile label = %+v", rf.Label)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	r := NewRegistry()
	s := Spec{Name: "X", Impl: func(Machine, []Arg, taint.Set) (Outcome, error) { return Outcome{}, nil }}
	r.Register(s)
	r.Register(s)
}

func TestSourceClassString(t *testing.T) {
	if ClassNone.String() != "none" || ClassSemantic.String() != "semantic" || ClassRandom.String() != "random" {
		t.Error("SourceClass strings wrong")
	}
}

func TestMutexAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	name := m.putString(0x1000, "_AVIRA_2109")

	// Open of a missing mutex fails with NULL / FILE_NOT_FOUND.
	out, err := m.call(r, "OpenMutexA", name)
	if err != nil {
		t.Fatal(err)
	}
	if out.Success || out.Ret != 0 {
		t.Errorf("open missing mutex: %+v", out)
	}
	if m.env.LastError() != winenv.ErrFileNotFound {
		t.Errorf("LastError = %v", m.env.LastError())
	}

	// Create it; open then succeeds with a handle.
	out, err = m.call(r, "CreateMutexA", name)
	if err != nil || !out.Success || out.Ret == 0 {
		t.Fatalf("create: %+v, %v", out, err)
	}
	out, err = m.call(r, "OpenMutexA", name)
	if err != nil || !out.Success || out.Ret == 0 {
		t.Fatalf("open after create: %+v, %v", out, err)
	}

	// Second create succeeds but leaves ERROR_ALREADY_EXISTS.
	out, _ = m.call(r, "CreateMutexA", name)
	if !out.Success {
		t.Errorf("second create: %+v", out)
	}
	if m.env.LastError() != winenv.ErrAlreadyExists {
		t.Errorf("LastError = %v, want ALREADY_EXISTS", m.env.LastError())
	}
}

func TestCreateFileDispositions(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	name := m.putString(0x1000, `C:\Windows\system32\sdra64.exe`)

	// OPEN_EXISTING on a missing file fails with INVALID_HANDLE_VALUE.
	out, err := m.call(r, "CreateFileA", name, 0, OpenExisting)
	if err != nil {
		t.Fatal(err)
	}
	if out.Success || out.Ret != InvalidHandleValue {
		t.Errorf("open missing: %+v", out)
	}
	if out.OpOverride != winenv.OpOpen {
		t.Errorf("open override = %v", out.OpOverride)
	}

	// CREATE_NEW succeeds, then fails on the second attempt.
	out, _ = m.call(r, "CreateFileA", name, 0, CreateNew)
	if !out.Success {
		t.Fatalf("create new: %+v", out)
	}
	out, _ = m.call(r, "CreateFileA", name, 0, CreateNew)
	if out.Success {
		t.Errorf("duplicate create new: %+v", out)
	}

	// CREATE_ALWAYS succeeds on an existing file (truncate-open).
	out, _ = m.call(r, "CreateFileA", name, 0, CreateAlways)
	if !out.Success {
		t.Errorf("create always: %+v", out)
	}
}

func TestReadWriteFileViaHandle(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	name := m.putString(0x1000, `C:\x\data.bin`)
	out, _ := m.call(r, "CreateFileA", name, 0, CreateNew)
	h := out.Ret

	payload := m.putString(0x2000, "MZ-payload")
	out, err := m.call(r, "WriteFile", h, payload, 10)
	if err != nil || !out.Success {
		t.Fatalf("WriteFile: %+v, %v", out, err)
	}

	out, err = m.call(r, "ReadFile", h, 0x3000, 10)
	if err != nil || !out.Success {
		t.Fatalf("ReadFile: %+v, %v", out, err)
	}
	got, _, _ := m.ReadBytes(0x3000, 10)
	if string(got) != "MZ-payload" {
		t.Errorf("read back %q", got)
	}

	// Bad handle fails and sets ERROR_INVALID_HANDLE.
	out, _ = m.call(r, "ReadFile", 0xBEEF, 0x3000, 4)
	if out.Success {
		t.Error("ReadFile on bad handle succeeded")
	}
	if m.env.LastError() != winenv.ErrInvalidHandle {
		t.Errorf("LastError = %v", m.env.LastError())
	}
}

func TestFileQueryDeleteCopy(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	src := m.putString(0x1000, `C:\a.exe`)
	dst := m.putString(0x1100, `C:\b.exe`)

	out, _ := m.call(r, "GetFileAttributesA", src)
	if out.Success || out.Ret != InvalidFileAttributes {
		t.Errorf("query missing: %+v", out)
	}

	m.call(r, "CreateFileA", src, 0, CreateNew)
	out, _ = m.call(r, "GetFileAttributesA", src)
	if !out.Success || out.Ret != 0x20 {
		t.Errorf("query existing: %+v", out)
	}

	out, _ = m.call(r, "CopyFileA", src, dst, 1)
	if !out.Success {
		t.Errorf("copy: %+v", out)
	}
	// failIfExists honours existing destination.
	out, _ = m.call(r, "CopyFileA", src, dst, 1)
	if out.Success {
		t.Errorf("copy over existing with failIfExists: %+v", out)
	}
	// Without failIfExists it overwrites.
	out, _ = m.call(r, "CopyFileA", src, dst, 0)
	if !out.Success {
		t.Errorf("overwrite copy: %+v", out)
	}

	out, _ = m.call(r, "DeleteFileA", dst)
	if !out.Success {
		t.Errorf("delete: %+v", out)
	}
	out, _ = m.call(r, "DeleteFileA", dst)
	if out.Success {
		t.Errorf("double delete: %+v", out)
	}
}

func TestRegistryAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	path := m.putString(0x1000, `HKLM\Software\Evil`)
	phKey := uint32(0x2000)

	// Open missing fails with the status in EAX.
	out, _ := m.call(r, "RegOpenKeyExA", path, phKey)
	if out.Success || out.Ret != uint32(winenv.ErrFileNotFound) {
		t.Errorf("open missing key: %+v", out)
	}

	// Create writes the handle through the out-arg.
	out, _ = m.call(r, "RegCreateKeyExA", path, phKey)
	if !out.Success || out.Ret != 0 {
		t.Fatalf("create key: %+v", out)
	}
	h, _, _ := m.ReadWord(phKey)
	if h == 0 {
		t.Fatal("no handle written")
	}

	// Set then query a value (stored as key\value resource).
	valName := m.putString(0x1200, "Shell")
	data := m.putString(0x1300, "evil.exe")
	out, _ = m.call(r, "RegSetValueExA", h, valName, data, 8)
	if !out.Success {
		t.Fatalf("set value: %+v", out)
	}
	if !m.env.Exists(winenv.KindRegistry, `HKLM\Software\Evil\Shell`) {
		t.Error("value resource not created")
	}
	out, _ = m.call(r, "RegQueryValueExA", h, valName, 0x3000, 8)
	if !out.Success {
		t.Fatalf("query value: %+v", out)
	}
	got, _, _ := m.ReadBytes(0x3000, 8)
	if string(got) != "evil.exe" {
		t.Errorf("value = %q", got)
	}

	// RegCreateKeyEx on an existing key opens it.
	out, _ = m.call(r, "RegCreateKeyExA", path, phKey)
	if !out.Success {
		t.Errorf("re-create key: %+v", out)
	}

	// Delete.
	out, _ = m.call(r, "RegDeleteKeyA", path)
	if !out.Success {
		t.Errorf("delete key: %+v", out)
	}

	// Close with a bad handle.
	out, _ = m.call(r, "RegCloseKey", 0xBEEF)
	if out.Success {
		t.Error("close bad key handle succeeded")
	}
}

func TestProcessAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	// Inject into explorer.exe: open, write, remote thread.
	target := m.putString(0x1000, "explorer.exe")
	out, _ := m.call(r, "OpenProcessByNameA", target)
	if !out.Success || out.Ret == 0 {
		t.Fatalf("open explorer: %+v", out)
	}
	h := out.Ret
	out, _ = m.call(r, "WriteProcessMemory", h, 0x2000, 64)
	if !out.Success {
		t.Errorf("WriteProcessMemory: %+v", out)
	}
	out, _ = m.call(r, "CreateRemoteThread", h, 0x2000)
	if !out.Success {
		t.Errorf("CreateRemoteThread: %+v", out)
	}

	// Missing victim process.
	ghost := m.putString(0x1100, "nothere.exe")
	out, _ = m.call(r, "OpenProcessByNameA", ghost)
	if out.Success {
		t.Errorf("open missing process: %+v", out)
	}

	// CreateProcessA needs the image file present (or a system image).
	img := m.putString(0x1200, `C:\mal\drop.exe`)
	out, _ = m.call(r, "CreateProcessA", img)
	if out.Success {
		t.Errorf("create process without image: %+v", out)
	}
	m.call(r, "CreateFileA", img, 0, CreateNew)
	out, _ = m.call(r, "CreateProcessA", img)
	if !out.Success {
		t.Errorf("create process with image: %+v", out)
	}
	if !m.env.Exists(winenv.KindProcess, "drop.exe") {
		t.Error("process resource not created")
	}

	// Self-termination requests an exit.
	out, _ = m.call(r, "ExitProcess", 7)
	if out.Exit != ExitProcessKind || out.ExitCode != 7 {
		t.Errorf("ExitProcess: %+v", out)
	}
	out, _ = m.call(r, "TerminateProcess", CurrentProcessPseudoHandle, 3)
	if out.Exit != ExitProcessKind || out.ExitCode != 3 {
		t.Errorf("TerminateProcess(self): %+v", out)
	}
	out, _ = m.call(r, "ExitThread", 0)
	if out.Exit != ExitThreadKind {
		t.Errorf("ExitThread: %+v", out)
	}
}

func TestServiceAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	out, _ := m.call(r, "OpenSCManagerA")
	if !out.Success || out.Ret == 0 {
		t.Fatalf("OpenSCManager: %+v", out)
	}
	scm := out.Ret

	name := m.putString(0x1000, "qatpcks")
	bin := m.putString(0x1100, `C:\Windows\system32\driver\qatpcks.sys`)
	out, _ = m.call(r, "CreateServiceA", scm, name, bin)
	if !out.Success || out.Ret == 0 {
		t.Fatalf("CreateService: %+v", out)
	}
	svc := out.Ret

	out, _ = m.call(r, "StartServiceA", svc)
	if !out.Success {
		t.Errorf("StartService: %+v", out)
	}

	out, _ = m.call(r, "OpenServiceA", scm, name)
	if !out.Success {
		t.Errorf("OpenService: %+v", out)
	}

	out, _ = m.call(r, "DeleteService", svc)
	if !out.Success {
		t.Errorf("DeleteService: %+v", out)
	}

	// Duplicate create fails with SERVICE_EXISTS semantics.
	m.call(r, "CreateServiceA", scm, name, bin)
	out, _ = m.call(r, "CreateServiceA", scm, name, bin)
	if out.Success {
		t.Errorf("duplicate CreateService: %+v", out)
	}
}

func TestWindowAndLibraryAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	cls := m.putString(0x1000, "EVIL_ADWINDOW")
	out, _ := m.call(r, "FindWindowA", cls)
	if out.Success {
		t.Errorf("find missing window: %+v", out)
	}
	out, _ = m.call(r, "CreateWindowExA", cls, cls)
	if !out.Success {
		t.Fatalf("create window: %+v", out)
	}
	hwnd := out.Ret
	out, _ = m.call(r, "FindWindowA", cls)
	if !out.Success {
		t.Errorf("find window after create: %+v", out)
	}
	out, _ = m.call(r, "ShowWindow", hwnd, 1)
	if !out.Success {
		t.Errorf("show window: %+v", out)
	}
	out, _ = m.call(r, "DestroyWindow", hwnd)
	if !out.Success {
		t.Errorf("destroy window: %+v", out)
	}

	lib := m.putString(0x1100, "kernel32.dll")
	out, _ = m.call(r, "LoadLibraryA", lib)
	if !out.Success {
		t.Fatalf("LoadLibrary kernel32: %+v", out)
	}
	hmod := out.Ret
	proc := m.putString(0x1200, "CreateFileA")
	out, _ = m.call(r, "GetProcAddress", hmod, proc)
	if !out.Success || out.Ret == 0 {
		t.Errorf("GetProcAddress: %+v", out)
	}
	missing := m.putString(0x1300, "nosuch.dll")
	out, _ = m.call(r, "LoadLibraryA", missing)
	if out.Success {
		t.Errorf("LoadLibrary missing: %+v", out)
	}
	if m.env.LastError() != winenv.ErrModuleNotFound {
		t.Errorf("LastError = %v", m.env.LastError())
	}
	out, _ = m.call(r, "GetModuleHandleA", lib)
	if !out.Success || out.Ret == 0 {
		t.Errorf("GetModuleHandle: %+v", out)
	}
}

func TestInfoAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	out, _ := m.call(r, "GetComputerNameA", 0x1000, 64)
	if !out.Success {
		t.Fatalf("GetComputerName: %+v", out)
	}
	name, _, _ := m.ReadCString(0x1000)
	if name != "WIN-AUTOVAC01" {
		t.Errorf("computer name = %q", name)
	}

	out, _ = m.call(r, "GetVolumeInformationA", 0x1100)
	if !out.Success {
		t.Fatal("GetVolumeInformation failed")
	}
	serial, _, _ := m.ReadWord(0x1100)
	if serial != 0x5A17C0DE {
		t.Errorf("serial = %#x", serial)
	}

	// Random APIs draw from the machine PRNG (deterministic sequence).
	out1, _ := m.call(r, "GetTickCount")
	out2, _ := m.call(r, "GetTickCount")
	if out1.Ret == out2.Ret {
		t.Error("GetTickCount not advancing")
	}

	m.env.SetLastError(winenv.ErrAccessDenied)
	out, _ = m.call(r, "GetLastError")
	if out.Ret != uint32(winenv.ErrAccessDenied) {
		t.Errorf("GetLastError = %d", out.Ret)
	}
}

func TestStringAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	a := m.putString(0x1000, "Global\\X-99")
	b := m.putString(0x1100, "Global\\X-99")
	c := m.putString(0x1200, "global\\x-99")

	out, _ := m.call(r, "lstrcmpA", a, b)
	if out.Ret != 0 {
		t.Errorf("lstrcmp equal = %d", out.Ret)
	}
	out, _ = m.call(r, "lstrcmpA", a, c)
	if out.Ret == 0 {
		t.Errorf("lstrcmp case-different = 0")
	}
	out, _ = m.call(r, "lstrcmpiA", a, c)
	if out.Ret != 0 {
		t.Errorf("lstrcmpi case-insensitive = %d", out.Ret)
	}

	out, _ = m.call(r, "lstrlenA", a)
	if out.Ret != uint32(len("Global\\X-99")) {
		t.Errorf("lstrlen = %d", out.Ret)
	}

	dst := uint32(0x2000)
	m.putString(dst, "pre-")
	out, _ = m.call(r, "lstrcatA", dst, a)
	if !out.Success {
		t.Fatalf("lstrcat: %+v", out)
	}
	got, _, _ := m.ReadCString(dst)
	if got != "pre-Global\\X-99" {
		t.Errorf("lstrcat result = %q", got)
	}

	m.call(r, "lstrcpyA", 0x2100, a)
	got, _, _ = m.ReadCString(0x2100)
	if got != "Global\\X-99" {
		t.Errorf("lstrcpy result = %q", got)
	}
}

func TestSnprintf(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	format := m.putString(0x1000, "Global\\%s-%d")
	name := m.putString(0x1100, "WIN01")
	buf := uint32(0x2000)

	out, err := m.call(r, "_snprintf", buf, 64, format, name, 99)
	if err != nil || !out.Success {
		t.Fatalf("_snprintf: %+v, %v", out, err)
	}
	got, _, _ := m.ReadCString(buf)
	if got != "Global\\WIN01-99" {
		t.Errorf("result = %q", got)
	}
	if out.Ret != uint32(len(got)) {
		t.Errorf("ret = %d, want %d", out.Ret, len(got))
	}

	// Size limiting truncates.
	out, _ = m.call(r, "_snprintf", buf, 8, format, name, 99)
	got, _, _ = m.ReadCString(buf)
	if len(got) != 7 {
		t.Errorf("truncated result = %q (len %d)", got, len(got))
	}

	// Hex and char verbs.
	f2 := m.putString(0x1200, "mal-%x-%c")
	m.call(r, "_snprintf", buf, 64, f2, 0xBEEF, uint32('Z'))
	got, _, _ = m.ReadCString(buf)
	if got != "mal-beef-Z" {
		t.Errorf("hex/char result = %q", got)
	}

	// Literal %% and unknown verbs pass through.
	f3 := m.putString(0x1300, "100%%-%q")
	m.call(r, "_snprintf", buf, 64, f3)
	got, _, _ = m.ReadCString(buf)
	if got != "100%-%q" {
		t.Errorf("literal result = %q", got)
	}

	// Too few arguments is an implementation error.
	if _, err := m.call(r, "_snprintf", buf, 64, format); err == nil {
		t.Error("snprintf with missing args succeeded")
	}

	// wsprintfA: unsized variant.
	out, err = m.call(r, "wsprintfA", buf, format, name, 7)
	if err != nil || !out.Success {
		t.Fatalf("wsprintfA: %+v, %v", out, err)
	}
	got, _, _ = m.ReadCString(buf)
	if got != "Global\\WIN01-7" {
		t.Errorf("wsprintf result = %q", got)
	}
}

func TestSnprintfTaintSegments(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	format := m.putString(0x1000, "pfx-%s-sfx")
	// Tainted source string: label 5 on each byte.
	src := taint.Of(5)
	if err := m.WriteCString(0x1100, "HOST", src); err != nil {
		t.Fatal(err)
	}
	buf := uint32(0x2000)
	if _, err := m.call(r, "_snprintf", buf, 64, format, 0x1100); err != nil {
		t.Fatal(err)
	}
	got, _, _ := m.ReadCString(buf)
	if got != "pfx-HOST-sfx" {
		t.Fatalf("result = %q", got)
	}
	// Literal bytes untainted; the HOST bytes carry label 5.
	for i, want := range []bool{false, false, false, false, true, true, true, true, false} {
		tnt := m.taint[buf+uint32(i)]
		if tnt.Has(5) != want {
			t.Errorf("byte %d taint = %v, want tainted=%v", i, tnt, want)
		}
	}
}

func TestItoa(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	m.call(r, "_itoa", 255, 0x1000, 10)
	got, _, _ := m.ReadCString(0x1000)
	if got != "255" {
		t.Errorf("itoa base 10 = %q", got)
	}
	m.call(r, "_itoa", 255, 0x1000, 16)
	got, _, _ = m.ReadCString(0x1000)
	if got != "ff" {
		t.Errorf("itoa base 16 = %q", got)
	}
}

func TestNetAPIs(t *testing.T) {
	r := Standard()
	m := newFakeMachine()

	host := m.putString(0x1000, "cc.botnet.example")
	out, _ := m.call(r, "gethostbyname", host)
	if !out.Success {
		t.Errorf("gethostbyname: %+v", out)
	}

	out, _ = m.call(r, "socket")
	s := out.Ret
	target := m.putString(0x1100, "cc.botnet.example:443")
	out, _ = m.call(r, "connect", s, target)
	if !out.Success || out.Ret != 0 {
		t.Errorf("connect: %+v", out)
	}
	out, _ = m.call(r, "send", s, 0x2000, 128)
	if !out.Success || out.Ret != 128 {
		t.Errorf("send: %+v", out)
	}
	out, _ = m.call(r, "recv", s, 0x3000, 32)
	if !out.Success || out.Ret != 32 {
		t.Errorf("recv: %+v", out)
	}
	m.call(r, "closesocket", s)

	// Blackholed targets fail to connect.
	m.env.Net().Blackhole("dead.example:80")
	dead := m.putString(0x1200, "dead.example:80")
	out, _ = m.call(r, "connect", s, dead)
	if out.Success {
		t.Errorf("connect to blackholed: %+v", out)
	}

	// WinINet path.
	agent := m.putString(0x1300, "MalAgent")
	out, _ = m.call(r, "InternetOpenA", agent)
	h := out.Ret
	url := m.putString(0x1400, "http://cc.example/cmd")
	out, _ = m.call(r, "InternetOpenUrlA", h, url)
	if !out.Success {
		t.Errorf("InternetOpenUrl: %+v", out)
	}
	out, _ = m.call(r, "InternetReadFile", out.Ret, 0x4000, 16)
	if !out.Success || out.Ret != 1 {
		t.Errorf("InternetReadFile: %+v", out)
	}

	flows := m.env.Net().Flows()
	if len(flows) < 6 {
		t.Errorf("flows = %d, want >= 6", len(flows))
	}
}

func TestAPIClassifierLists(t *testing.T) {
	r := Standard()
	for _, list := range [][]string{
		TerminationAPIs(), KernelInjectionAPIs(), ProcessInjectionAPIs(), NetworkAPIs(),
	} {
		for _, name := range list {
			if _, ok := r.Lookup(name); !ok {
				t.Errorf("classifier API %q not registered", name)
			}
		}
	}
}

func TestGetModuleFileName(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	out, _ := m.call(r, "GetModuleFileNameA", 0, 0x1000, 260)
	if !out.Success {
		t.Fatalf("GetModuleFileName: %+v", out)
	}
	got, _, _ := m.ReadCString(0x1000)
	if !strings.HasSuffix(got, "test-prog.exe") {
		t.Errorf("self path = %q", got)
	}
}

func TestGetTempFileName(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	prefix := m.putString(0x1000, "mal")
	out, _ := m.call(r, "GetTempFileNameA", prefix, 0x1100)
	if !out.Success {
		t.Fatalf("GetTempFileName: %+v", out)
	}
	name, _, _ := m.ReadCString(0x1100)
	if !strings.HasPrefix(name, `C:\Temp\mal`) || !strings.HasSuffix(name, ".tmp") {
		t.Errorf("temp name = %q", name)
	}
	if out.Identifier != name {
		t.Errorf("identifier override = %q, want %q", out.Identifier, name)
	}
	if !m.env.Exists(winenv.KindFile, name) {
		t.Error("temp file not created")
	}
	// The API is labelled random — determinism analysis will discard it.
	spec, _ := r.Lookup("GetTempFileNameA")
	if spec.Label.Class != ClassRandom {
		t.Error("GetTempFileNameA not ClassRandom")
	}
}
