package winapi

import (
	"fmt"

	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// fakeMachine is a minimal Machine for exercising API implementations
// without the emulator: a sparse byte memory with per-byte taint, a
// winenv, and a counting PRNG.
type fakeMachine struct {
	env       *winenv.Env
	mem       map[uint32]byte
	taint     map[uint32]taint.Set
	principal string
	randState uint32
}

func newFakeMachine() *fakeMachine {
	return &fakeMachine{
		env:       winenv.New(winenv.DefaultIdentity()),
		mem:       make(map[uint32]byte),
		taint:     make(map[uint32]taint.Set),
		principal: "test-prog",
	}
}

func (m *fakeMachine) Env() *winenv.Env  { return m.env }
func (m *fakeMachine) Principal() string { return m.principal }
func (m *fakeMachine) SelfPath() string  { return `C:\samples\test-prog.exe` }

func (m *fakeMachine) Rand() uint32 {
	m.randState = m.randState*1664525 + 1013904223
	return m.randState
}

func (m *fakeMachine) ReadCString(addr uint32) (string, taint.Set, error) {
	var out []byte
	var t taint.Set
	for a := addr; ; a++ {
		b := m.mem[a]
		if b == 0 {
			break
		}
		out = append(out, b)
		t = t.Union(m.taint[a])
		if len(out) > 4096 {
			return "", taint.Set{}, fmt.Errorf("unterminated string at %#x", addr)
		}
	}
	return string(out), t, nil
}

func (m *fakeMachine) WriteCString(addr uint32, s string, t taint.Set) error {
	for i := 0; i < len(s); i++ {
		m.mem[addr+uint32(i)] = s[i]
		m.taint[addr+uint32(i)] = t
	}
	m.mem[addr+uint32(len(s))] = 0
	delete(m.taint, addr+uint32(len(s)))
	return nil
}

func (m *fakeMachine) ReadWord(addr uint32) (uint32, taint.Set, error) {
	var v uint32
	var t taint.Set
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.mem[addr+i]) << (8 * i)
		t = t.Union(m.taint[addr+i])
	}
	return v, t, nil
}

func (m *fakeMachine) WriteWord(addr uint32, v uint32, t taint.Set) error {
	for i := uint32(0); i < 4; i++ {
		m.mem[addr+i] = byte(v >> (8 * i))
		m.taint[addr+i] = t
	}
	return nil
}

func (m *fakeMachine) ReadBytes(addr, n uint32) ([]byte, taint.Set, error) {
	out := make([]byte, n)
	var t taint.Set
	for i := uint32(0); i < n; i++ {
		out[i] = m.mem[addr+i]
		t = t.Union(m.taint[addr+i])
	}
	return out, t, nil
}

func (m *fakeMachine) WriteBytes(addr uint32, b []byte, t taint.Set) error {
	for i, v := range b {
		m.mem[addr+uint32(i)] = v
		m.taint[addr+uint32(i)] = t
	}
	return nil
}

// putString stores a NUL-terminated string and returns its address.
func (m *fakeMachine) putString(addr uint32, s string) uint32 {
	if err := m.WriteCString(addr, s, taint.Set{}); err != nil {
		panic(err)
	}
	return addr
}

// call invokes an API by name with plain (untainted) argument values.
func (m *fakeMachine) call(reg *Registry, name string, args ...uint32) (Outcome, error) {
	spec, ok := reg.Lookup(name)
	if !ok {
		return Outcome{}, fmt.Errorf("no API %q", name)
	}
	if spec.NArgs != Variadic && spec.NArgs != len(args) {
		return Outcome{}, fmt.Errorf("%s: want %d args, got %d", name, spec.NArgs, len(args))
	}
	wrapped := make([]Arg, len(args))
	for i, v := range args {
		wrapped[i] = Arg{Value: v}
	}
	return spec.Impl(m, wrapped, taint.Set{})
}
