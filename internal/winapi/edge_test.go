package winapi

import (
	"strings"
	"testing"

	"autovac/internal/winenv"
)

func TestClip(t *testing.T) {
	cases := []struct {
		s    string
		size uint32
		want string
	}{
		{"hello", 64, "hello"},
		{"hello", 6, "hello"},
		{"hello", 5, "hell"},
		{"hello", 1, ""},
		{"hello", 0, ""},
		{"", 8, ""},
	}
	for _, tc := range cases {
		if got := clip(tc.s, tc.size); got != tc.want {
			t.Errorf("clip(%q, %d) = %q, want %q", tc.s, tc.size, got, tc.want)
		}
	}
}

func TestGetUserNameAndHostname(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	out, _ := m.call(r, "GetUserNameA", 0x1000, 32)
	if !out.Success {
		t.Fatal("GetUserName failed")
	}
	name, _, _ := m.ReadCString(0x1000)
	if name != "alice" {
		t.Errorf("user = %q", name)
	}
	out, _ = m.call(r, "gethostname", 0x1100, 32)
	if !out.Success {
		t.Fatal("gethostname failed")
	}
	host, _, _ := m.ReadCString(0x1100)
	if host != "win-autovac01" {
		t.Errorf("host = %q (want lower-case computer name)", host)
	}
}

func TestGetSystemDirAndTempPath(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	m.call(r, "GetSystemDirectoryA", 0x1000, 64)
	dir, _, _ := m.ReadCString(0x1000)
	if dir != `C:\Windows\system32` {
		t.Errorf("sysdir = %q", dir)
	}
	m.call(r, "GetTempPathA", 64, 0x1100)
	tmp, _, _ := m.ReadCString(0x1100)
	if tmp != `C:\Temp\` {
		t.Errorf("temp = %q", tmp)
	}
	// Truncation via small buffers.
	m.call(r, "GetSystemDirectoryA", 0x1200, 4)
	short, _, _ := m.ReadCString(0x1200)
	if len(short) != 3 {
		t.Errorf("truncated sysdir = %q", short)
	}
}

func TestQueryPerformanceCounterAndRand(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	out, _ := m.call(r, "QueryPerformanceCounter", 0x1000)
	if !out.Success {
		t.Fatal("QPC failed")
	}
	v1, _, _ := m.ReadWord(0x1000)
	m.call(r, "QueryPerformanceCounter", 0x1000)
	v2, _, _ := m.ReadWord(0x1000)
	if v1 == v2 {
		t.Error("QPC not advancing")
	}
	out, _ = m.call(r, "rand")
	if out.Ret > 0x7FFF {
		t.Errorf("rand = %#x out of C range", out.Ret)
	}
	for _, api := range []string{"GetTickCount", "QueryPerformanceCounter", "rand"} {
		spec, _ := r.Lookup(api)
		if spec.Label.Class != ClassRandom {
			t.Errorf("%s not ClassRandom", api)
		}
	}
	for _, api := range []string{"GetComputerNameA", "GetUserNameA", "GetVolumeInformationA", "gethostname"} {
		spec, _ := r.Lookup(api)
		if spec.Label.Class != ClassSemantic {
			t.Errorf("%s not ClassSemantic", api)
		}
	}
}

func TestReleaseMutexAndSleep(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	if out, _ := m.call(r, "ReleaseMutex", 4); !out.Success {
		t.Error("ReleaseMutex failed")
	}
	if out, _ := m.call(r, "Sleep", 100); !out.Success {
		t.Error("Sleep failed")
	}
}

func TestTerminateProcessOnVictim(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	victim := m.putString(0x1000, "explorer.exe")
	out, _ := m.call(r, "OpenProcessByNameA", victim)
	h := out.Ret
	out, _ = m.call(r, "TerminateProcess", h, 0)
	if !out.Success || out.Exit != ExitNone {
		t.Fatalf("terminate victim: %+v", out)
	}
	if m.env.Exists(winenv.KindProcess, "explorer.exe") {
		t.Error("victim process survived")
	}
	// Terminating an invalid handle fails.
	out, _ = m.call(r, "TerminateProcess", 0xBEEF, 0)
	if out.Success {
		t.Error("terminate with bad handle succeeded")
	}
}

func TestLoadLibraryOfDroppedDLL(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	path := m.putString(0x1000, `C:\Windows\system32\payload.dll`)
	// Missing both as module and file: fails.
	out, _ := m.call(r, "LoadLibraryA", path)
	if out.Success {
		t.Fatal("load of missing dll succeeded")
	}
	// Drop the file, then LoadLibrary registers and loads it.
	m.call(r, "CreateFileA", path, 0, CreateNew)
	out, _ = m.call(r, "LoadLibraryA", path)
	if !out.Success {
		t.Fatalf("load of dropped dll failed: %+v", out)
	}
	if !m.env.Exists(winenv.KindLibrary, "payload.dll") {
		t.Error("dropped dll not registered as module")
	}
}

func TestSnprintfZeroSizeBuffer(t *testing.T) {
	r := Standard()
	m := newFakeMachine()
	f := m.putString(0x1000, "abc%s")
	arg := m.putString(0x1100, "def")
	out, err := m.call(r, "_snprintf", 0x2000, 0, f, arg)
	if err != nil {
		t.Fatal(err)
	}
	// Size 0 means unlimited in our convention's guard (args[1]==0 skips
	// the limit); the full string is written.
	got, _, _ := m.ReadCString(0x2000)
	if got != "abcdef" || out.Ret != 6 {
		t.Errorf("result = %q ret=%d", got, out.Ret)
	}
}

func TestRegistryWhitelistedNames(t *testing.T) {
	// Sanity on spec metadata: every resource-labelled API declares a
	// failure convention distinct from its success value, so forced
	// failures are observable.
	r := Standard()
	for _, name := range r.ResourceAPIs() {
		spec, _ := r.Lookup(name)
		l := spec.Label
		if l.FailureRet == l.SuccessRet {
			t.Errorf("%s: failure and success returns identical (%#x)", name, l.FailureRet)
		}
		if !l.Op.Valid() {
			t.Errorf("%s: invalid op", name)
		}
	}
}

func TestNetworkAPIsUnlabelled(t *testing.T) {
	// Network APIs must NOT be resource-labelled: a C&C host is not a
	// local vaccine resource (Type-II immunization is detected from
	// their disappearance, not from mutating them).
	r := Standard()
	for _, name := range NetworkAPIs() {
		spec, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if spec.IsResource() {
			t.Errorf("%s is resource-labelled", name)
		}
	}
}

func TestCmpRet(t *testing.T) {
	if cmpRet(-5) != 0xFFFFFFFF || cmpRet(3) != 1 || cmpRet(0) != 0 {
		t.Error("cmpRet wrong")
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		`C:\a\b\c.exe`: "c.exe",
		`c.exe`:        "c.exe",
		`C:/mixed/x`:   "x",
		``:             "",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHash32Stable(t *testing.T) {
	if hash32("abc") != hash32("abc") {
		t.Error("hash32 unstable")
	}
	if hash32("abc") == hash32("abd") {
		t.Error("hash32 collision on trivial inputs")
	}
}

func TestSpecNamesUnique(t *testing.T) {
	r := Standard()
	seen := map[string]bool{}
	for _, n := range r.Names() {
		if seen[n] {
			t.Errorf("duplicate %s", n)
		}
		seen[n] = true
		if strings.TrimSpace(n) == "" {
			t.Error("empty API name")
		}
	}
}
