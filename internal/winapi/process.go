package winapi

import (
	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// CurrentProcessPseudoHandle is GetCurrentProcess's return value.
const CurrentProcessPseudoHandle uint32 = 0xFFFFFFFF

// registerProcess adds process APIs, including the benign-process
// injection primitives (OpenProcessByNameA + WriteProcessMemory +
// CreateRemoteThread) whose disappearance from a mutated trace signals
// Type-IV partial immunization.
//
// OpenProcessByNameA condenses the usual CreateToolhelp32Snapshot /
// Process32Next / OpenProcess walk into one call; the observable
// behaviour (find a victim process by image name, get a handle) is
// identical, which is all the differential analysis compares.
func registerProcess(r *Registry) {
	r.Register(Spec{
		Name: "GetCurrentProcess", NArgs: 0,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: CurrentProcessPseudoHandle, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "CreateProcessA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindProcess, Op: winenv.OpCreate,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			path, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			// The new process is identified by its image base name.
			name := baseName(path)
			// Starting a program requires its image to exist on disk
			// unless it is a system binary.
			if !m.Env().Exists(winenv.KindFile, path) && !m.Env().Exists(winenv.KindProcess, name) {
				m.Env().SetLastError(winenv.ErrFileNotFound)
				return Outcome{Ret: 0, Identifier: path}, nil
			}
			res := doResource(m, winenv.KindProcess, winenv.OpCreate, name, nil)
			if !res.OK && res.Err == winenv.ErrAlreadyExists {
				// A second instance of the same image is fine.
				res = doResource(m, winenv.KindProcess, winenv.OpOpen, name, nil)
			}
			if !res.OK {
				return Outcome{Ret: 0, Identifier: path}, nil
			}
			return Outcome{Ret: 1, Success: true, Identifier: path}, nil
		},
	})

	r.Register(Spec{
		Name: "OpenProcessByNameA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindProcess, Op: winenv.OpOpen,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrProcNotFound,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindProcess, winenv.OpOpen, name, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "WriteProcessMemory", NArgs: 3,
		Label: Label{
			Resource: winenv.KindProcess, Op: winenv.OpWrite,
			IdentifierArg: 0, IdentifierViaHandle: true, Taint: TaintReturn,
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindProcess {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: 0}, nil
			}
			res := doResource(m, winenv.KindProcess, winenv.OpWrite, name, nil)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})

	r.Register(Spec{
		Name: "CreateRemoteThread", NArgs: 2,
		Label: Label{
			Resource: winenv.KindProcess, Op: winenv.OpWrite,
			IdentifierArg: 0, IdentifierViaHandle: true, Taint: TaintReturn,
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindProcess {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: 0}, nil
			}
			res := doResource(m, winenv.KindProcess, winenv.OpWrite, name, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: fakeSuccessHandle, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "TerminateProcess", NArgs: 2,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			if args[0].Value == CurrentProcessPseudoHandle {
				return Outcome{Ret: 1, Success: true, Exit: ExitProcessKind, ExitCode: args[1].Value}, nil
			}
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindProcess {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: 0}, nil
			}
			res := doResource(m, winenv.KindProcess, winenv.OpDelete, name, nil)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})

	r.Register(Spec{
		Name: "ExitProcess", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 0, Success: true, Exit: ExitProcessKind, ExitCode: args[0].Value}, nil
		},
	})

	r.Register(Spec{
		Name: "ExitThread", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 0, Success: true, Exit: ExitThreadKind, ExitCode: args[0].Value}, nil
		},
	})

	r.Register(Spec{
		Name: "Sleep", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			return Outcome{Ret: 0, Success: true}, nil
		},
	})
}

// registerService adds the service-control-manager APIs, the kernel
// injection vector of Type-I partial immunization (malware registering
// a dropped .sys driver as a service).
func registerService(r *Registry) {
	r.Register(Spec{
		Name: "OpenSCManagerA", NArgs: 0,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			// The SCM itself always opens; vaccine daemons may still
			// intercept the subsequent service operations.
			return Outcome{Ret: 0x5C0, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "CreateServiceA", NArgs: 3,
		Label: Label{
			Resource: winenv.KindService, Op: winenv.OpCreate,
			IdentifierArg: 1, Taint: TaintReturn,
			StaticArgs: []int{1, 2}, StrArgs: []int{1, 2},
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			binPath, _, err := m.ReadCString(args[2].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindService, winenv.OpCreate, name, []byte(binPath))
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "OpenServiceA", NArgs: 2,
		Label: Label{
			Resource: winenv.KindService, Op: winenv.OpOpen,
			IdentifierArg: 1, Taint: TaintReturn,
			StaticArgs: []int{1}, StrArgs: []int{1},
			FailureRet: 0, FailureErr: winenv.ErrServiceNotFound,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindService, winenv.OpOpen, name, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "StartServiceA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindService, Op: winenv.OpWrite,
			IdentifierArg: 0, IdentifierViaHandle: true, Taint: TaintReturn,
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindService {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: 0}, nil
			}
			res := doResource(m, winenv.KindService, winenv.OpWrite, name, nil)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})

	r.Register(Spec{
		Name: "DeleteService", NArgs: 1,
		Label: Label{
			Resource: winenv.KindService, Op: winenv.OpDelete,
			IdentifierArg: 0, IdentifierViaHandle: true, Taint: TaintReturn,
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindService {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: 0}, nil
			}
			res := doResource(m, winenv.KindService, winenv.OpDelete, name, nil)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})

	r.Register(Spec{
		Name: "CloseServiceHandle", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			ok := m.Env().CloseHandle(winenv.Handle(args[0].Value))
			return Outcome{Ret: boolRet(ok), Success: ok}, nil
		},
	})
}

// baseName extracts the final path component.
func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '\\' || path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
