package exclusive

import (
	"testing"

	"autovac/internal/malware"
	"autovac/internal/winenv"
)

func TestWhitelistPreloaded(t *testing.T) {
	ix := NewIndex()
	if ix.Exclusive(winenv.KindLibrary, "uxtheme.dll") {
		t.Error("uxtheme.dll reported exclusive")
	}
	if ix.Exclusive(winenv.KindLibrary, "UXTHEME.DLL") {
		t.Error("case-insensitive lookup failed")
	}
	if ix.Exclusive(winenv.KindRegistry, `HKLM\Software\Microsoft\Windows\CurrentVersion\Run`) {
		t.Error("Run key reported exclusive")
	}
	if !ix.Exclusive(winenv.KindMutex, "_AVIRA_2109") {
		t.Error("malware mutex reported non-exclusive by whitelist alone")
	}
	if ix.Size() == 0 {
		t.Error("whitelist empty")
	}
}

func TestAddAndBenignUser(t *testing.T) {
	ix := NewIndex()
	ix.Add(winenv.KindMutex, "FirefoxSingletonMutex", "benign-firefox")
	if ix.Exclusive(winenv.KindMutex, "firefoxsingletonmutex") {
		t.Error("added identifier still exclusive")
	}
	u, ok := ix.BenignUser(winenv.KindMutex, "FirefoxSingletonMutex")
	if !ok || u != "benign-firefox" {
		t.Errorf("BenignUser = %q %v", u, ok)
	}
	// First user wins.
	ix.Add(winenv.KindMutex, "FirefoxSingletonMutex", "benign-other")
	if u, _ := ix.BenignUser(winenv.KindMutex, "FirefoxSingletonMutex"); u != "benign-firefox" {
		t.Errorf("first user overwritten: %q", u)
	}
}

func TestBuildIndexFromBenignCorpus(t *testing.T) {
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(benign, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Benign single-instance mutexes are indexed.
	for _, m := range []string{"FirefoxSingletonMutex", "SkypeSingleInstance", "MSCTF.Shared.MUTEX.001"} {
		if ix.Exclusive(winenv.KindMutex, m) {
			t.Errorf("benign mutex %q exclusive", m)
		}
	}
	// Benign windows and registry keys are indexed.
	if ix.Exclusive(winenv.KindWindow, "MozillaWindowClass") {
		t.Error("benign window class exclusive")
	}
	if ix.Exclusive(winenv.KindRegistry, `HKCU\Software\Google\Chrome`) {
		t.Error("benign registry key exclusive")
	}
	// Benign Run values are indexed (registry value path form).
	if ix.Exclusive(winenv.KindRegistry, `HKLM\Software\Microsoft\Windows\CurrentVersion\Run\Skype`) {
		t.Error("benign Run value exclusive")
	}
	// Malware identifiers remain exclusive.
	for _, m := range []string{"_AVIRA_2109", "!VoqA.I4", `Global\WIN-AUTOVAC01-7`} {
		if !ix.Exclusive(winenv.KindMutex, m) {
			t.Errorf("malware mutex %q not exclusive", m)
		}
	}
	if !ix.Exclusive(winenv.KindFile, `C:\Windows\system32\sdra64.exe`) {
		t.Error("sdra64.exe not exclusive")
	}
}

func TestExclusivePattern(t *testing.T) {
	ix := NewIndex()
	ix.Add(winenv.KindMutex, "WORMX-cafe", "benign-oddball")
	if ix.ExclusivePattern(winenv.KindMutex, "WORMX-*") {
		t.Error("pattern overlapping benign identifier reported exclusive")
	}
	if !ix.ExclusivePattern(winenv.KindMutex, "OTHER-*") {
		t.Error("non-overlapping pattern reported non-exclusive")
	}
}

func TestBuildIndexDeterministic(t *testing.T) {
	benign, _ := malware.BenignCorpus()
	a, err := BuildIndex(benign[:10], 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildIndex(benign[:10], 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Errorf("index sizes differ: %d vs %d", a.Size(), b.Size())
	}
}

func TestDomainExclusiveness(t *testing.T) {
	ix := NewIndex()
	// Benign-traffic allowlist blocks exact and sub-domain matches,
	// in any identifier spelling (bare host, host:port, URL).
	for _, id := range []string{
		"update.microsoft.com",
		"UPDATE.MICROSOFT.COM:443",
		"http://update.microsoft.com/v11/check",
		"dl.update.microsoft.com",
	} {
		if ix.Exclusive(winenv.KindDomain, id) {
			t.Errorf("benign domain %q reported exclusive", id)
		}
	}
	// Malware-exclusive domains stay exclusive.
	for _, id := range []string{
		"rv-cnf-gen.example:445",
		"iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.example",
		"microsoft.com.evil.example", // benign name as a NON-suffix
	} {
		if !ix.Exclusive(winenv.KindDomain, id) {
			t.Errorf("exclusive domain %q reported benign", id)
		}
	}
	// Profiled benign traffic joins the oracle.
	ix.Add(winenv.KindDomain, "telemetry.vendor.example:443", "officesuite")
	if ix.Exclusive(winenv.KindDomain, "telemetry.vendor.example") {
		t.Error("profiled benign domain reported exclusive")
	}
	if u, ok := ix.BenignUser(winenv.KindDomain, "api.telemetry.vendor.example"); !ok || u != "officesuite" {
		t.Errorf("sub-domain BenignUser = %q, %v", u, ok)
	}
}

func TestIsBenignDomain(t *testing.T) {
	if !IsBenignDomain("time.windows.com") || !IsBenignDomain("a.time.windows.com:123") {
		t.Error("benign domain not recognized")
	}
	if IsBenignDomain("cc.botnet.example") || IsBenignDomain("windows.com.evil.example") {
		t.Error("non-benign domain recognized as benign")
	}
}
