// Package exclusive implements AUTOVAC's exclusiveness analysis
// (paper §IV-A): deciding whether a candidate resource identifier is
// unique to the malware or also used by benign software, in which case
// a vaccine built on it would break legitimate programs.
//
// The paper answers this with search-engine queries ("Googling the
// Internet"); this reproduction builds the equivalent oracle locally by
// profiling the benign-software corpus in the emulator and indexing
// every resource identifier it touches, plus a static whitelist of
// well-known system resources. The decision procedure — reject a
// candidate whose identifier is associated with benign software — is
// identical.
package exclusive

import (
	"fmt"
	"strings"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/malware"
	"autovac/internal/winenv"
)

// Index answers exclusiveness queries.
type Index struct {
	// used maps resource kind -> canonical identifier -> first benign
	// user (for diagnostics).
	used map[winenv.ResourceKind]map[string]string
}

// NewIndex returns an empty index preloaded with the static whitelist.
func NewIndex() *Index {
	ix := &Index{used: make(map[winenv.ResourceKind]map[string]string)}
	ix.addWhitelist()
	return ix
}

// addWhitelist seeds the well-known system resources every Windows
// machine exposes — the "pre-built whitelist" of §VI-F.
func (ix *Index) addWhitelist() {
	add := func(kind winenv.ResourceKind, names ...string) {
		for _, n := range names {
			ix.Add(kind, n, "whitelist")
		}
	}
	add(winenv.KindLibrary,
		"kernel32.dll", "ntdll.dll", "user32.dll", "advapi32.dll",
		"ws2_32.dll", "wininet.dll", "uxtheme.dll", "msvcrt.dll",
		"shell32.dll", "ole32.dll", "gdi32.dll", "comctl32.dll")
	add(winenv.KindProcess,
		"explorer.exe", "svchost.exe", "winlogon.exe", "services.exe",
		"lsass.exe", "csrss.exe", "smss.exe")
	add(winenv.KindFile,
		`C:\Windows\system.ini`, `C:\Windows\win.ini`,
		`C:\Windows\system32\kernel32.dll`, `C:\Windows\system32\ntdll.dll`)
	add(winenv.KindRegistry,
		`HKLM\Software\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\Software\Microsoft\Windows\CurrentVersion\RunOnce`,
		`HKCU\Software\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\Software\Microsoft\Windows NT\CurrentVersion\Winlogon`,
		`HKLM\System\CurrentControlSet\Services`)
	add(winenv.KindService, "EventLog", "Dhcp", "Dnscache", "LanmanServer")
}

// Add records a benign use of an identifier.
func (ix *Index) Add(kind winenv.ResourceKind, identifier, user string) {
	m := ix.used[kind]
	if m == nil {
		m = make(map[string]string)
		ix.used[kind] = m
	}
	key := canonical(identifier)
	if _, ok := m[key]; !ok {
		m[key] = user
	}
}

// canonical normalizes identifiers the way the winenv namespaces do.
func canonical(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, "/", `\`))
}

// Exclusive reports whether the identifier is NOT associated with
// benign software (and therefore usable as a vaccine).
func (ix *Index) Exclusive(kind winenv.ResourceKind, identifier string) bool {
	_, used := ix.used[kind][canonical(identifier)]
	return !used
}

// BenignUser returns the benign program first seen using an identifier.
func (ix *Index) BenignUser(kind winenv.ResourceKind, identifier string) (string, bool) {
	u, ok := ix.used[kind][canonical(identifier)]
	return u, ok
}

// ExclusivePattern reports whether no indexed benign identifier matches
// a '*'-wildcard pattern — the check partial-static vaccines need
// before a daemon starts intercepting by pattern.
func (ix *Index) ExclusivePattern(kind winenv.ResourceKind, pattern string) bool {
	for id := range ix.used[kind] {
		if determinism.MatchPattern(pattern, id) {
			return false
		}
	}
	return true
}

// Size returns the number of indexed identifiers across all kinds.
func (ix *Index) Size() int {
	n := 0
	for _, m := range ix.used {
		n += len(m)
	}
	return n
}

// BuildIndex profiles the benign corpus in the emulator and indexes
// every resource identifier benign software touches. The same seed
// yields the same index.
func BuildIndex(benign []*malware.Sample, seed uint64) (*Index, error) {
	ix := NewIndex()
	for _, s := range benign {
		env := winenv.New(winenv.DefaultIdentity())
		tr, err := emu.Run(s.Program, env, emu.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("exclusive: profiling %s: %w", s.Name(), err)
		}
		for _, c := range tr.ResourceCalls() {
			if c.Identifier == "" {
				continue
			}
			kind, err := winenv.ParseKind(c.ResourceKind)
			if err != nil {
				continue
			}
			ix.Add(kind, c.Identifier, s.Name())
		}
	}
	return ix, nil
}
