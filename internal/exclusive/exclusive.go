// Package exclusive implements AUTOVAC's exclusiveness analysis
// (paper §IV-A): deciding whether a candidate resource identifier is
// unique to the malware or also used by benign software, in which case
// a vaccine built on it would break legitimate programs.
//
// The paper answers this with search-engine queries ("Googling the
// Internet"); this reproduction builds the equivalent oracle locally by
// profiling the benign-software corpus in the emulator and indexing
// every resource identifier it touches, plus a static whitelist of
// well-known system resources. The decision procedure — reject a
// candidate whose identifier is associated with benign software — is
// identical.
package exclusive

import (
	"fmt"
	"strings"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/malware"
	"autovac/internal/winenv"
)

// Index answers exclusiveness queries.
type Index struct {
	// used maps resource kind -> canonical identifier -> first benign
	// user (for diagnostics).
	used map[winenv.ResourceKind]map[string]string
}

// NewIndex returns an empty index preloaded with the static whitelist.
func NewIndex() *Index {
	ix := &Index{used: make(map[winenv.ResourceKind]map[string]string)}
	ix.addWhitelist()
	return ix
}

// addWhitelist seeds the well-known system resources every Windows
// machine exposes — the "pre-built whitelist" of §VI-F.
func (ix *Index) addWhitelist() {
	add := func(kind winenv.ResourceKind, names ...string) {
		for _, n := range names {
			ix.Add(kind, n, "whitelist")
		}
	}
	add(winenv.KindLibrary,
		"kernel32.dll", "ntdll.dll", "user32.dll", "advapi32.dll",
		"ws2_32.dll", "wininet.dll", "uxtheme.dll", "msvcrt.dll",
		"shell32.dll", "ole32.dll", "gdi32.dll", "comctl32.dll")
	add(winenv.KindProcess,
		"explorer.exe", "svchost.exe", "winlogon.exe", "services.exe",
		"lsass.exe", "csrss.exe", "smss.exe")
	add(winenv.KindFile,
		`C:\Windows\system.ini`, `C:\Windows\win.ini`,
		`C:\Windows\system32\kernel32.dll`, `C:\Windows\system32\ntdll.dll`)
	add(winenv.KindRegistry,
		`HKLM\Software\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\Software\Microsoft\Windows\CurrentVersion\RunOnce`,
		`HKCU\Software\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\Software\Microsoft\Windows NT\CurrentVersion\Winlogon`,
		`HKLM\System\CurrentControlSet\Services`)
	add(winenv.KindService, "EventLog", "Dhcp", "Dnscache", "LanmanServer")
	add(winenv.KindDomain, DefaultBenignDomains()...)
}

// DefaultBenignDomains lists well-known benign-traffic domains that
// must never become vaccine material: sinkholing update.microsoft.com
// would break every machine's update path. Exclusiveness checks match
// these by suffix, so sub-domains are covered too.
func DefaultBenignDomains() []string {
	return []string{
		"update.microsoft.com",
		"windowsupdate.microsoft.com",
		"download.windowsupdate.com",
		"time.windows.com",
		"crl.microsoft.com",
		"www.msftncsi.com",
		"dns.msftncsi.com",
		"ocsp.digicert.com",
	}
}

// IsBenignDomain reports whether a hostname (or host:port/URL target)
// is one of the default benign-traffic domains or a sub-domain of one.
// cmd/vaccheck uses it as a standalone audit rule for sinkhole vaccines.
func IsBenignDomain(target string) bool {
	host := domainKey(target)
	for _, d := range DefaultBenignDomains() {
		if domainCovers(d, host) {
			return true
		}
	}
	return false
}

// domainKey normalizes a domain identifier: lower-case bare hostname
// with scheme, path, and port stripped. URLs and host:port targets
// index under their hostname.
func domainKey(s string) string {
	h := strings.ToLower(s)
	if i := strings.Index(h, "://"); i >= 0 {
		h = h[i+3:]
	}
	if i := strings.IndexByte(h, '/'); i >= 0 {
		h = h[:i]
	}
	if i := strings.LastIndexByte(h, ':'); i >= 0 {
		h = h[:i]
	}
	return h
}

// domainCovers reports whether benign (a bare lower-case hostname)
// covers host: equal, or host is a sub-domain of benign.
func domainCovers(benign, host string) bool {
	return host == benign || strings.HasSuffix(host, "."+benign)
}

// Add records a benign use of an identifier.
func (ix *Index) Add(kind winenv.ResourceKind, identifier, user string) {
	m := ix.used[kind]
	if m == nil {
		m = make(map[string]string)
		ix.used[kind] = m
	}
	key := canonicalFor(kind, identifier)
	if _, ok := m[key]; !ok {
		m[key] = user
	}
}

// canonical normalizes identifiers the way the winenv namespaces do.
func canonical(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, "/", `\`))
}

// canonicalFor picks the kind's canonicalization: domains index under
// their bare hostname (slash rewriting would mangle URLs), everything
// else under the winenv namespace spelling.
func canonicalFor(kind winenv.ResourceKind, s string) string {
	if kind == winenv.KindDomain {
		return domainKey(s)
	}
	return canonical(s)
}

// Exclusive reports whether the identifier is NOT associated with
// benign software (and therefore usable as a vaccine). Domain
// identifiers also match by parent suffix: a benign entry for
// update.microsoft.com covers dl.update.microsoft.com, so DGA-looking
// sub-domains of benign zones never become vaccines.
func (ix *Index) Exclusive(kind winenv.ResourceKind, identifier string) bool {
	_, used := ix.benignUse(kind, identifier)
	return !used
}

// BenignUser returns the benign program first seen using an identifier.
func (ix *Index) BenignUser(kind winenv.ResourceKind, identifier string) (string, bool) {
	return ix.benignUse(kind, identifier)
}

// benignUse is the shared lookup behind Exclusive and BenignUser.
func (ix *Index) benignUse(kind winenv.ResourceKind, identifier string) (string, bool) {
	m := ix.used[kind]
	key := canonicalFor(kind, identifier)
	if u, ok := m[key]; ok {
		return u, true
	}
	if kind == winenv.KindDomain {
		// Walk parent suffixes: a.b.example → b.example → example.
		for i := strings.IndexByte(key, '.'); i >= 0; i = strings.IndexByte(key, '.') {
			key = key[i+1:]
			if u, ok := m[key]; ok {
				return u, true
			}
		}
	}
	return "", false
}

// ExclusivePattern reports whether no indexed benign identifier matches
// a '*'-wildcard pattern — the check partial-static vaccines need
// before a daemon starts intercepting by pattern.
func (ix *Index) ExclusivePattern(kind winenv.ResourceKind, pattern string) bool {
	for id := range ix.used[kind] {
		if determinism.MatchPattern(pattern, id) {
			return false
		}
	}
	return true
}

// Size returns the number of indexed identifiers across all kinds.
func (ix *Index) Size() int {
	n := 0
	for _, m := range ix.used {
		n += len(m)
	}
	return n
}

// BuildIndex profiles the benign corpus in the emulator and indexes
// every resource identifier benign software touches. The same seed
// yields the same index.
func BuildIndex(benign []*malware.Sample, seed uint64) (*Index, error) {
	ix := NewIndex()
	for _, s := range benign {
		env := winenv.New(winenv.DefaultIdentity())
		tr, err := emu.Run(s.Program, env, emu.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("exclusive: profiling %s: %w", s.Name(), err)
		}
		for _, c := range tr.ResourceCalls() {
			if c.Identifier == "" {
				continue
			}
			kind, err := winenv.ParseKind(c.ResourceKind)
			if err != nil {
				continue
			}
			ix.Add(kind, c.Identifier, s.Name())
		}
	}
	return ix, nil
}
