package experiment

import (
	"errors"
	"fmt"
	"strings"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/impact"
	"autovac/internal/isa"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// The paper's §VII ("Limitations and Future Work") names three evasion
// avenues. This file reproduces each one as a measurable experiment:
//
//  1. identifier renaming across versions (old vaccines stop working,
//     re-analysis recovers),
//  2. dropping the resource checks entirely (no vaccine exists — at the
//     price of re-infection),
//  3. control-dependence obfuscation of identifier derivation (the
//     data-flow-only determinism analysis misclassifies the identifier
//     as static, and the vaccine silently fails cross-host).

// RenameEvasionReport is the outcome of the identifier-renaming
// experiment.
type RenameEvasionReport struct {
	// OldVaccineWorksOnOriginal confirms the baseline.
	OldVaccineWorksOnOriginal bool
	// OldVaccineWorksOnRenamed is the evasion's effect (expected false).
	OldVaccineWorksOnRenamed bool
	// ReanalysisYieldsVaccine shows the automatic-tool counter: analysing
	// the new version recovers a working vaccine.
	ReanalysisYieldsVaccine bool
	// NewVaccineWorksOnRenamed confirms the recovered vaccine.
	NewVaccineWorksOnRenamed bool
}

// RenameEvasion runs the §VII identifier-renaming evasion against a
// family sample. Per-vaccine replay failures are isolated: a vaccine
// whose check errors is skipped (its failure joined into the returned
// error) while the remaining vaccines still populate the report.
func (s *Setup) RenameEvasion(fam malware.Family) (*RenameEvasionReport, error) {
	original, err := s.Generator.FamilySample(fam)
	if err != nil {
		return nil, err
	}
	res, err := s.Pipeline.SafeAnalyze(original)
	if err != nil {
		return nil, err
	}
	if len(res.Vaccines) == 0 {
		return nil, fmt.Errorf("experiment: no vaccines for %s", fam)
	}
	renamed, err := s.Generator.RenamedVariant(original, "v2")
	if err != nil {
		return nil, err
	}

	rep := &RenameEvasionReport{}
	normalOrig, err := emu.Run(original.Program, winenv.New(s.Pipeline.Identity()), emu.Options{Seed: s.Pipeline.Seed()})
	if err != nil {
		return nil, err
	}
	normalRen, err := emu.Run(renamed.Program, winenv.New(s.Pipeline.Identity()), emu.Options{Seed: s.Pipeline.Seed()})
	if err != nil {
		return nil, err
	}
	var failures []error
	check := func(sm *malware.Sample, v *vaccine.Vaccine, normal *trace.Trace) (works bool) {
		err := guard(func() error {
			var err error
			works, err = s.vaccineWorksOn(sm, v, normal)
			return err
		})
		if err != nil {
			failures = append(failures, fmt.Errorf("experiment: rename evasion %s: %w", v.ID, err))
		}
		return works
	}
	for i := range res.Vaccines {
		if check(original, &res.Vaccines[i], normalOrig) {
			rep.OldVaccineWorksOnOriginal = true
		}
		if check(renamed, &res.Vaccines[i], normalRen) {
			rep.OldVaccineWorksOnRenamed = true
		}
	}

	// Re-analyse the renamed version (the paper's argument for an
	// automatic tool: vaccine refresh is cheap).
	res2, err := s.Pipeline.SafeAnalyze(renamed)
	if err != nil {
		return nil, err
	}
	rep.ReanalysisYieldsVaccine = len(res2.Vaccines) > 0
	for i := range res2.Vaccines {
		if check(renamed, &res2.Vaccines[i], normalRen) {
			rep.NewVaccineWorksOnRenamed = true
			break
		}
	}
	return rep, errors.Join(failures...)
}

// CheckDropEvasion builds a variant of a marker-guarded sample with the
// checks removed (§VII: the author "can drop the specific resource
// checking logic ... [which] will possibly lead to re-infection").
// It returns whether the original was flagged, whether the checkless
// variant was flagged, and whether the variant re-infects an
// already-infected machine (the cost of the evasion).
func (s *Setup) CheckDropEvasion() (flaggedOriginal, flaggedEvasive, reinfects bool, err error) {
	spec := &malware.Spec{Name: "checked-worm", Category: malware.Worm,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehMarkerMutex, ID: "CHKWORM.77"},
			{Kind: malware.BehNetworkCC, ID: "chk.example", Aux: "445", Count: 2},
		}}
	original := &malware.Sample{Spec: spec, Program: malware.MustEmit(spec)}

	evSpec := &malware.Spec{Name: "checkless-worm", Category: malware.Worm,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehMarkerMutex, ID: "CHKWORM.77", Unchecked: true},
			{Kind: malware.BehNetworkCC, ID: "chk.example", Aux: "445", Count: 2, Unchecked: true},
		}}
	evasive := &malware.Sample{Spec: evSpec, Program: malware.MustEmit(evSpec)}

	pOrig, err := s.Pipeline.Phase1(original)
	if err != nil {
		return false, false, false, err
	}
	pEv, err := s.Pipeline.Phase1(evasive)
	if err != nil {
		return false, false, false, err
	}

	// The checkless variant runs its payload even on an infected host.
	infected := winenv.New(s.Pipeline.Identity())
	infected.Inject(winenv.Resource{Kind: winenv.KindMutex, Name: "CHKWORM.77", Owner: "system"})
	tr, err := emu.Run(evasive.Program, infected, emu.Options{Seed: s.Pipeline.Seed()})
	if err != nil {
		return false, false, false, err
	}
	reinfects = len(tr.CallsTo("connect")) > 0 && tr.Exit == trace.ExitHalt
	return pOrig.HasVaccineCandidates(), pEv.HasVaccineCandidates(), reinfects, nil
}

// ControlDepReport is the outcome of the control-dependence
// obfuscation experiment.
type ControlDepReport struct {
	// Identifier is the marker observed on the analysis machine.
	Identifier string
	// ClassifiedAs is the (wrong) determinism class the analysis
	// assigns: the laundering strips the semantic provenance, so the
	// per-host identifier looks static.
	ClassifiedAs determinism.Class
	// VaccineWorksOnAnalysisHost is true (the constant matches there).
	VaccineWorksOnAnalysisHost bool
	// VaccineWorksOnOtherHost is the silent failure (expected false).
	VaccineWorksOnOtherHost bool
}

// ControlDepEvasion reproduces the §VII data-flow-evasion limitation:
// the marker name derives from the computer name, but every byte is
// copied through a control-dependent equality ladder (compare the
// tainted byte against each candidate constant; write the UNTAINTED
// constant on match). Data-flow taint cannot follow the copy, so
// determinism analysis sees an all-static identifier and emits a
// constant vaccine that only protects machines named like the analysis
// host.
func (s *Setup) ControlDepEvasion() (*ControlDepReport, error) {
	prog, err := controlDepSample()
	if err != nil {
		return nil, err
	}
	sample := &malware.Sample{
		Spec:    &malware.Spec{Name: "ctrl-dep-worm", Category: malware.Worm},
		Program: prog,
	}
	res, err := s.Pipeline.SafeAnalyze(sample)
	if err != nil {
		return nil, err
	}
	var v *vaccine.Vaccine
	for i := range res.Vaccines {
		if res.Vaccines[i].Resource == winenv.KindMutex {
			v = &res.Vaccines[i]
			break
		}
	}
	if v == nil {
		return nil, fmt.Errorf("experiment: no mutex vaccine from control-dep sample (%d vaccines, %d rejected)",
			len(res.Vaccines), len(res.Rejected))
	}
	rep := &ControlDepReport{Identifier: v.Identifier, ClassifiedAs: v.Class}

	normal, err := emu.Run(prog, winenv.New(s.Pipeline.Identity()), emu.Options{Seed: s.Pipeline.Seed()})
	if err != nil {
		return nil, err
	}
	ok, err := s.vaccineWorksOn(sample, v, normal)
	if err != nil {
		return nil, err
	}
	rep.VaccineWorksOnAnalysisHost = ok

	// The same (constant) vaccine on a differently-named machine.
	otherID := s.Pipeline.Identity()
	otherID.ComputerName = "OTHER-HOST-99"
	otherEnv := winenv.New(otherID)
	if v.Class == determinism.Static {
		otherEnv.Inject(winenv.Resource{Kind: v.Resource, Name: v.Identifier, Owner: "vaccine"})
	}
	normalOther, err := emu.Run(prog, winenv.New(otherID), emu.Options{Seed: s.Pipeline.Seed()})
	if err != nil {
		return nil, err
	}
	deployedOther, err := emu.Run(prog, otherEnv, emu.Options{Seed: s.Pipeline.Seed()})
	if err != nil {
		return nil, err
	}
	rep.VaccineWorksOnOtherHost = impact.Classify(deployedOther, normalOther).Immunizing()
	return rep, nil
}

// controlDepSample builds the obfuscated program: the computer name is
// copied byte by byte through an equality ladder over the printable
// character range, so the output carries no data-flow taint.
func controlDepSample() (*isa.Program, error) {
	b := isa.NewBuilder("ctrl-dep-worm")
	b.RData("suffix", "-7")
	b.Buf("cname", 32)
	b.Buf("oname", 48)
	b.CallAPI("GetComputerNameA", isa.Sym("cname"), isa.Imm(32))

	// esi = &cname, edi = &oname
	b.Lea(isa.ESI, isa.MemSym("cname"))
	b.Lea(isa.EDI, isa.MemSym("oname"))
	b.Label("outer")
	b.Movb(isa.R(isa.EAX), isa.Mem(isa.ESI, 0)).Comment("tainted byte")
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jz("done")
	// Equality ladder: for ecx in [32,127): if byte == ecx, write the
	// UNTAINTED counter value.
	b.Mov(isa.R(isa.ECX), isa.Imm(32))
	b.Label("inner")
	b.Cmp(isa.R(isa.EAX), isa.R(isa.ECX)).Comment("tainted predicate; write below is not")
	b.Jnz("skipw")
	b.Movb(isa.Mem(isa.EDI, 0), isa.R(isa.ECX)).Comment("control-dependent copy")
	b.Label("skipw")
	b.Inc(isa.R(isa.ECX))
	b.Cmp(isa.R(isa.ECX), isa.Imm(127))
	b.Jl("inner")
	b.Inc(isa.R(isa.ESI))
	b.Inc(isa.R(isa.EDI))
	b.Jmp("outer")
	b.Label("done")
	b.Movb(isa.Mem(isa.EDI, 0), isa.Imm(0)).Comment("terminate the laundered copy")
	b.CallAPI("lstrcatA", isa.Sym("oname"), isa.Sym("suffix"))

	// Marker probe on the laundered name.
	b.CallAPI("OpenMutexA", isa.Sym("oname"))
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jnz("infected")
	b.CallAPI("CreateMutexA", isa.Sym("oname"))
	// Payload.
	b.CallAPI("gethostbyname", isa.Sym("suffix"))
	b.Halt()
	b.Label("infected")
	b.CallAPI("ExitProcess", isa.Imm(0))
	return b.Build()
}

// RenderEvasion renders the three §VII experiments.
func RenderEvasion(ren *RenameEvasionReport, flaggedOrig, flaggedEv, reinfects bool, cd *ControlDepReport) string {
	var b strings.Builder
	b.WriteString("Evasion experiments (§VII limitations, reproduced)\n")
	fmt.Fprintf(&b, "1. identifier renaming:\n")
	fmt.Fprintf(&b, "   old vaccine on original: %v; on renamed version: %v\n",
		ren.OldVaccineWorksOnOriginal, ren.OldVaccineWorksOnRenamed)
	fmt.Fprintf(&b, "   re-analysis of renamed version yields a working vaccine: %v\n",
		ren.ReanalysisYieldsVaccine && ren.NewVaccineWorksOnRenamed)
	fmt.Fprintf(&b, "2. dropping resource checks:\n")
	fmt.Fprintf(&b, "   original flagged: %v; checkless variant flagged: %v; checkless variant re-infects: %v\n",
		flaggedOrig, flaggedEv, reinfects)
	fmt.Fprintf(&b, "3. control-dependence obfuscation:\n")
	fmt.Fprintf(&b, "   identifier %q classified %s; vaccine works on analysis host: %v; on other host: %v\n",
		cd.Identifier, cd.ClassifiedAs, cd.VaccineWorksOnAnalysisHost, cd.VaccineWorksOnOtherHost)
	return b.String()
}
