package experiment

import (
	"strings"
	"testing"
)

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byAPI := make(map[string]TableIRow)
	for _, r := range rows {
		byAPI[r.API] = r
	}
	// The paper's two canonical examples.
	om := byAPI["OpenMutexA"]
	if om.ResourceType != "Mutex" || !strings.Contains(om.Identifier, "name string") ||
		!strings.Contains(om.Failure, "0x02") || om.TaintTarget != "return value" {
		t.Errorf("OpenMutexA row = %+v", om)
	}
	rf := byAPI["ReadFile"]
	if rf.ResourceType != "File" || !strings.Contains(rf.Identifier, "handle map") ||
		!strings.Contains(rf.Failure, "0x1e") {
		t.Errorf("ReadFile row = %+v", rf)
	}
	// Registry APIs show the status convention and argument tainting.
	rk := byAPI["RegOpenKeyExA"]
	if !strings.Contains(rk.Success, "ERROR_SUCCESS") || rk.TaintTarget != "argument 2" {
		t.Errorf("RegOpenKeyExA row = %+v", rk)
	}
	// Unknown / unlabelled APIs are skipped.
	if got := TableI("NoSuchAPI", "Sleep"); len(got) != 0 {
		t.Errorf("unlabelled APIs produced rows: %+v", got)
	}
	text := RenderTableI(rows)
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "OpenMutexA") {
		t.Errorf("render:\n%s", text)
	}
	res, total := Hooked()
	if res < 25 || total < 60 || res >= total {
		t.Errorf("Hooked() = %d, %d", res, total)
	}
}
