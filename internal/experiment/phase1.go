package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"autovac/internal/core"
	"autovac/internal/winenv"
)

// Phase1Stats aggregates the Phase-I evaluation (§VI-B): how many
// resource-API occurrences the corpus produced, how many can deviate
// execution, and the per-resource/per-operation breakdown of Figure 3.
type Phase1Stats struct {
	// SamplesRun is the corpus size profiled.
	SamplesRun int
	// SamplesFlagged counts samples with at least one candidate
	// ("possibly has a vaccine").
	SamplesFlagged int
	// Occurrences is the total count of tracked resource-API calls
	// (the paper reports 460,323).
	Occurrences int
	// Sensitive is the count of occurrences whose taint reached a
	// predicate (the paper reports 371,015 = 80.3%).
	Sensitive int
	// ByKindOp buckets sensitive occurrences by resource kind and
	// operation (Figure 3's data).
	ByKindOp map[winenv.ResourceKind]map[winenv.Op]int
}

// SensitiveRatio returns Sensitive/Occurrences.
func (st *Phase1Stats) SensitiveRatio() float64 {
	if st.Occurrences == 0 {
		return 0
	}
	return float64(st.Sensitive) / float64(st.Occurrences)
}

// KindShare returns the fraction of sensitive occurrences on one
// resource kind (the paper: file 37.39%, registry 20.08%, mutex 7.07%,
// windows 13.14%, process 8.02%, library 6.6%, service 3.4%).
func (st *Phase1Stats) KindShare(kind winenv.ResourceKind) float64 {
	if st.Sensitive == 0 {
		return 0
	}
	n := 0
	for _, c := range st.ByKindOp[kind] {
		n += c
	}
	return float64(n) / float64(st.Sensitive)
}

// parallelIndexes fans indexes out to a bounded worker pool and waits.
// Workers claim indexes from a shared atomic counter — there is no
// producer goroutine and no channel, so a panicking work item can
// never leave the dispatcher blocked on a send nobody will receive.
// Every call runs under recovery; a panic is captured (first one wins)
// and re-raised on the calling goroutine after the pool drains, where
// the experiment-level guard can contain it.
func (s *Setup) parallelIndexes(n int, work func(i int)) {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicMu  sync.Mutex
		panicVal interface{}
		panicTB  []byte
	)
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicVal == nil {
					panicVal = r
					panicTB = debug.Stack()
				}
				panicMu.Unlock()
			}
		}()
		work(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(fmt.Sprintf("experiment: worker panic: %v\n%s", panicVal, panicTB))
	}
}

// RunPhase1 profiles the whole corpus and returns the statistics plus
// the per-sample profiles (consumed by the Phase-II experiments).
// Profiling runs on the Setup's worker pool; aggregation is serial and
// in sample order, so the statistics are worker-count independent.
// Failures (errors and panics alike) are isolated per sample: healthy
// samples are aggregated and returned even when others fail, with the
// failures joined — in sample order — into the returned error.
func (s *Setup) RunPhase1() (*Phase1Stats, []*core.Profile, error) {
	st := &Phase1Stats{
		ByKindOp: make(map[winenv.ResourceKind]map[winenv.Op]int),
	}
	profs := make([]*core.Profile, len(s.Samples))
	errs := make([]error, len(s.Samples))
	s.parallelIndexes(len(s.Samples), func(i int) {
		errs[i] = guard(func() error {
			var err error
			profs[i], err = s.Pipeline.Phase1(s.Samples[i])
			return err
		})
	})
	var profiles []*core.Profile
	var failures []error
	for i, sm := range s.Samples {
		if errs[i] != nil {
			failures = append(failures, fmt.Errorf("experiment: phase1 %s: %w", sm.Name(), errs[i]))
			continue
		}
		prof := profs[i]
		st.SamplesRun++
		st.Occurrences += prof.ResourceOccurrences
		st.Sensitive += prof.SensitiveOccurrences
		if prof.HasVaccineCandidates() {
			st.SamplesFlagged++
		}
		// Labels that reached a predicate in this profile.
		hot := make(map[uint32]bool)
		for _, hit := range prof.Normal.Predicates {
			for _, hs := range hit.Sources {
				hot[uint32(hs)] = true
			}
		}
		for _, c := range prof.Normal.Calls {
			if c.ResourceKind == "" {
				continue
			}
			// Bucket only the sensitive occurrences, like Figure 3.
			sensitive := false
			for _, src := range c.TaintSources {
				if hot[uint32(src)] {
					sensitive = true
					break
				}
			}
			if !sensitive {
				continue
			}
			kind, err := winenv.ParseKind(c.ResourceKind)
			if err != nil {
				continue
			}
			op, err := parseOp(c.Op)
			if err != nil {
				continue
			}
			m := st.ByKindOp[kind]
			if m == nil {
				m = make(map[winenv.Op]int)
				st.ByKindOp[kind] = m
			}
			m[op]++
		}
		profiles = append(profiles, prof)
	}
	return st, profiles, errors.Join(failures...)
}

// parseOp converts an op name back to the enum.
func parseOp(s string) (winenv.Op, error) {
	for _, op := range winenv.Ops() {
		if op.String() == s {
			return op, nil
		}
	}
	return winenv.OpInvalid, fmt.Errorf("experiment: unknown op %q", s)
}

// Figure3Row is one bar group of Figure 3: a resource kind with its
// per-operation share of all sensitive occurrences.
type Figure3Row struct {
	Kind winenv.ResourceKind
	// Share maps operation -> percentage of ALL sensitive occurrences.
	Share map[winenv.Op]float64
	// Total is the kind's combined percentage.
	Total float64
}

// Figure3 derives the resource-sensitive behaviour distribution
// (paper Figure 3) from Phase-I statistics.
func Figure3(st *Phase1Stats) []Figure3Row {
	var rows []Figure3Row
	for _, kind := range winenv.Kinds() {
		row := Figure3Row{Kind: kind, Share: make(map[winenv.Op]float64)}
		for op, n := range st.ByKindOp[kind] {
			pct := 100 * float64(n) / float64(max(st.Sensitive, 1))
			row.Share[op] = pct
			row.Total += pct
		}
		rows = append(rows, row)
	}
	return rows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
