package experiment

import (
	"fmt"
	"strings"

	"autovac/internal/core"
	"autovac/internal/fleet"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// The epidemic experiment closes AUTOVAC's loop end to end: a
// killswitch worm is analysed by the pipeline under a pseudo-C2
// scenario, the extracted domain vaccine is published to a fleet
// registry, and worm propagation races the fleet's delta sync at
// several latencies. The paper's Phase-III claim — vaccine delivery
// beats patch delivery because a vaccine needs no per-sample
// signature — shows up here as the immunized fleet's infection curve
// flattening at sync time while the unprotected control saturates.

// EpidemicConfig configures the worm-race experiment.
type EpidemicConfig struct {
	// Hosts is the fleet size (default 48).
	Hosts int
	// Waves is the number of propagation rounds (default 10).
	Waves int
	// Fanout is infection attempts per infected host per wave
	// (default 2).
	Fanout int
	// PublishWave is when the vaccine pack reaches the registry
	// (default 1).
	PublishWave int
	// Latencies are the sync latencies (waves after publication) to
	// race; an unprotected control (-1) is always appended. Default
	// {0, 2, 4}.
	Latencies []int
	// Seed drives the whole experiment.
	Seed uint64
}

// EpidemicRow is one simulated fleet's outcome.
type EpidemicRow struct {
	// Latency is the sync latency in waves; -1 is the unprotected
	// control.
	Latency int
	// Curve is the infected-host count per wave (Curve[0] = seeding).
	Curve []int
	// FinalInfected is the infected count after the last wave.
	FinalInfected int
	// Attempts and Repelled count infection attempts and survivals.
	Attempts int
	Repelled int
	// Immunized counts hosts that were still clean when the pack
	// landed — the hosts the sync actually protected.
	Immunized int
}

// EpidemicReport is the full experiment outcome.
type EpidemicReport struct {
	// Killswitch is the worm's killswitch domain (the vaccine
	// identifier).
	Killswitch string
	// Vaccines is the pipeline's domain-vaccine pack for the worm.
	Vaccines []vaccine.Vaccine
	// Hosts and Waves echo the configuration.
	Hosts, Waves int
	// Rows holds one fleet per latency, control last.
	Rows []EpidemicRow
}

// RunEpidemic builds the killswitch worm, extracts its domain vaccine
// through the full pipeline, and races propagation against delta sync
// at each configured latency plus the unprotected control.
func RunEpidemic(cfg EpidemicConfig) (*EpidemicReport, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 48
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 10
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.PublishWave <= 0 {
		cfg.PublishWave = 1
	}
	if len(cfg.Latencies) == 0 {
		cfg.Latencies = []int{0, 2, 4}
	}

	const killswitch = "iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.example"
	gen := malware.NewGenerator(int64(cfg.Seed))
	worm, err := gen.WormSample(killswitch)
	if err != nil {
		return nil, err
	}
	sc := malware.WormScenario(killswitch)

	p := core.New(core.Config{Seed: cfg.Seed, C2: sc})
	res, err := p.Analyze(worm)
	if err != nil {
		return nil, fmt.Errorf("experiment: analysing worm: %w", err)
	}
	var vs []vaccine.Vaccine
	for _, v := range res.Vaccines {
		if v.Resource == winenv.KindDomain {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return nil, fmt.Errorf("experiment: no domain vaccine extracted from killswitch worm")
	}
	pack := &vaccine.Pack{Generator: "epidemic", Vaccines: vs}
	if err := pack.Verify(); err != nil {
		return nil, fmt.Errorf("experiment: worm vaccine pack: %w", err)
	}

	rep := &EpidemicReport{
		Killswitch: killswitch,
		Vaccines:   vs,
		Hosts:      cfg.Hosts,
		Waves:      cfg.Waves,
	}
	for _, lat := range append(append([]int{}, cfg.Latencies...), -1) {
		wcfg := fleet.WormConfig{
			Hosts:       cfg.Hosts,
			Waves:       cfg.Waves,
			Fanout:      cfg.Fanout,
			Worm:        worm,
			Scenario:    sc,
			Seed:        cfg.Seed,
			PublishWave: cfg.PublishWave,
			SyncLatency: lat,
		}
		if lat >= 0 {
			wcfg.Vaccines = vs
		}
		wres, err := fleet.SimulateWorm(wcfg)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, EpidemicRow{
			Latency:       lat,
			Curve:         wres.Curve,
			FinalInfected: wres.FinalInfected(),
			Attempts:      wres.Attempts,
			Repelled:      wres.Repelled,
			Immunized:     wres.Immunized,
		})
	}
	return rep, nil
}

// RenderEpidemic renders the infection curves as a text table, one row
// per sync latency, one column per wave.
func RenderEpidemic(rep *EpidemicReport) string {
	var b strings.Builder
	b.WriteString("Epidemic — killswitch worm vs vaccine delta sync\n")
	fmt.Fprintf(&b, "worm killswitch %q; %d hosts, %d waves; vaccine: %s\n",
		rep.Killswitch, rep.Hosts, rep.Waves, rep.Vaccines[0].String())
	fmt.Fprintf(&b, "%-10s", "sync lat.")
	for w := 0; w < len(rep.Rows[0].Curve); w++ {
		fmt.Fprintf(&b, " %4s", fmt.Sprintf("w%d", w))
	}
	fmt.Fprintf(&b, " %9s %9s\n", "repelled", "immunized")
	for _, r := range rep.Rows {
		label := fmt.Sprintf("+%d waves", r.Latency)
		if r.Latency < 0 {
			label = "control"
		}
		fmt.Fprintf(&b, "%-10s", label)
		for _, n := range r.Curve {
			fmt.Fprintf(&b, " %4d", n)
		}
		fmt.Fprintf(&b, " %9d %9d\n", r.Repelled, r.Immunized)
	}
	return b.String()
}
