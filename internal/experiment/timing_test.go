package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestMeasureTiming(t *testing.T) {
	s := smallSetup(t, 10)
	tm, err := s.MeasureTiming(5)
	if err != nil {
		t.Fatal(err)
	}
	if tm.SamplesTimed != 5 {
		t.Errorf("samples timed = %d", tm.SamplesTimed)
	}
	for name, d := range map[string]time.Duration{
		"analysis":  tm.PerSampleAnalysis,
		"slicing":   tm.BackwardSlicing,
		"impact":    tm.ImpactAnalysis,
		"injection": tm.StaticBatchInjection,
		"replay":    tm.SliceReplay,
	} {
		if d <= 0 {
			t.Errorf("%s duration = %v", name, d)
		}
	}
	// Structure claims: batch static injection is cheaper than analysing
	// a sample end to end; the daemon adds measurable but bounded cost.
	if tm.HookWith119 < tm.HookBaseline {
		t.Errorf("hook with patterns (%v) cheaper than baseline (%v)", tm.HookWith119, tm.HookBaseline)
	}
	if tm.HookAddedCost() < 0 || tm.HookAddedCost() > time.Millisecond {
		t.Errorf("added hook cost = %v", tm.HookAddedCost())
	}
	if tm.EmulatorStepsPerSec <= 0 {
		t.Errorf("emulator throughput = %v", tm.EmulatorStepsPerSec)
	}
	text := RenderTiming(tm)
	for _, frag := range []string{"789 s", "214 s", "25.7 s", "373 static", "Minstr/s"} {
		if !strings.Contains(text, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}
