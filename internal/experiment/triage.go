package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"autovac/internal/core"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

// TriageStudy compares a full corpus analysis with Phase-0 static
// triage off (the dynamic baseline) and on, over the stock corpus plus
// the hash-resolving bands — the population the triage pass was built
// for, since only register-indirect callsites distinguish it from the
// taint pre-filter. The recovered API surface over-approximates every
// execution's call set, so the two runs must produce byte-identical
// vaccine packs; the study reports how many samples triage proved
// unable to make any resource call (emulation skipped outright), the
// wall-clock on both sides, and flags any pack divergence as a
// soundness violation.
type TriageStudy struct {
	// Samples is the total corpus size both runs covered (stock corpus
	// plus the appended hash-resolving bands).
	Samples int
	// HashResolving counts the appended hash-resolving samples.
	HashResolving int
	// Skipped counts samples triage proved resource-free (their
	// emulation was skipped entirely).
	Skipped int
	// DynamicWall and TriageWall are the two runs' wall-clock times.
	DynamicWall time.Duration
	TriageWall  time.Duration
	// Vaccines is the vaccine count (identical in both runs when sound).
	Vaccines int
	// Identical reports whether the two packs had the same digest. A
	// false value means triage skipped a sample that had a vaccine — a
	// soundness bug.
	Identical bool
}

// SkippedRatio returns the fraction of samples skipped.
func (t *TriageStudy) SkippedRatio() float64 {
	if t.Samples == 0 {
		return 0
	}
	return float64(t.Skipped) / float64(t.Samples)
}

// Triage runs the study: the stock corpus extended with perBand
// hash-resolving samples per band is analysed once with Phase-0 triage
// off and once with it on, packs compared by digest.
func (s *Setup) Triage(ctx context.Context, perBand int) (*TriageStudy, error) {
	hr, err := s.Generator.HashResolveCorpus(perBand)
	if err != nil {
		return nil, fmt.Errorf("experiment: triage corpus: %w", err)
	}
	samples := append(append([]*malware.Sample{}, s.Samples...), hr...)

	run := func(triage bool) (*vaccine.Pack, *core.RunStats, time.Duration, error) {
		t0 := time.Now()
		results, stats, err := s.Pipeline.AnalyzeCorpus(ctx, samples, core.CorpusOptions{
			Workers:      s.Workers,
			StaticTriage: triage,
		})
		wall := time.Since(t0)
		if err != nil {
			return nil, nil, wall, err
		}
		pack := &vaccine.Pack{Generator: "experiment/triage"}
		for _, res := range results {
			if res != nil {
				pack.Vaccines = append(pack.Vaccines, res.Vaccines...)
			}
		}
		return pack, stats, wall, nil
	}
	dynPack, _, dynWall, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiment: triage baseline: %w", err)
	}
	triPack, triStats, triWall, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiment: triage run: %w", err)
	}
	return &TriageStudy{
		Samples:       len(samples),
		HashResolving: len(hr),
		Skipped:       triStats.TriageSkipped,
		DynamicWall:   dynWall,
		TriageWall:    triWall,
		Vaccines:      len(dynPack.Vaccines),
		Identical:     dynPack.Digest() == triPack.Digest(),
	}, nil
}

// RenderTriage renders the study as a small report block.
func RenderTriage(t *TriageStudy) string {
	var b strings.Builder
	b.WriteString("Phase-0 triage study (static API-surface recovery)\n")
	fmt.Fprintf(&b, "samples:           %d (%d hash-resolving)\n", t.Samples, t.HashResolving)
	fmt.Fprintf(&b, "triage skipped:    %d (%.1f%%)\n", t.Skipped, 100*t.SkippedRatio())
	fmt.Fprintf(&b, "dynamic-only wall: %v\n", t.DynamicWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "triage wall:       %v\n", t.TriageWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "vaccines:          %d\n", t.Vaccines)
	if t.Identical {
		b.WriteString("packs: byte-identical (triage is sound on this corpus)\n")
	} else {
		b.WriteString("packs: DIVERGED — triage dropped a vaccine (soundness bug)\n")
	}
	return b.String()
}
