package experiment

import (
	"strings"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/malware"
)

func TestRenameEvasion(t *testing.T) {
	s := smallSetup(t, 10)
	rep, err := s.RenameEvasion(malware.PoisonIvy)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OldVaccineWorksOnOriginal {
		t.Error("baseline vaccine does not work on the original")
	}
	if rep.OldVaccineWorksOnRenamed {
		t.Error("renaming evasion failed: old vaccine still works")
	}
	if !rep.ReanalysisYieldsVaccine || !rep.NewVaccineWorksOnRenamed {
		t.Error("re-analysis did not recover a working vaccine")
	}
}

func TestCheckDropEvasion(t *testing.T) {
	s := smallSetup(t, 10)
	flaggedOrig, flaggedEv, reinfects, err := s.CheckDropEvasion()
	if err != nil {
		t.Fatal(err)
	}
	if !flaggedOrig {
		t.Error("checked worm not flagged")
	}
	if flaggedEv {
		t.Error("checkless worm flagged despite having no resource checks")
	}
	// The paper's point: dropping the check means re-infection.
	if !reinfects {
		t.Error("checkless worm did not re-infect an infected host")
	}
}

func TestControlDepEvasion(t *testing.T) {
	s := smallSetup(t, 10)
	rep, err := s.ControlDepEvasion()
	if err != nil {
		t.Fatal(err)
	}
	// The laundered identifier still reflects the analysis machine's
	// name, but the data-flow analysis sees it as static.
	if !strings.Contains(rep.Identifier, "WIN-AUTOVAC01") {
		t.Errorf("identifier = %q, want the computer name embedded", rep.Identifier)
	}
	if rep.ClassifiedAs != determinism.Static {
		t.Errorf("classified as %v; the documented limitation expects (wrongly) static", rep.ClassifiedAs)
	}
	if !rep.VaccineWorksOnAnalysisHost {
		t.Error("vaccine should still work on the analysis host")
	}
	if rep.VaccineWorksOnOtherHost {
		t.Error("vaccine unexpectedly worked cross-host; the limitation did not reproduce")
	}
	// Render includes all three experiments.
	ren := &RenameEvasionReport{OldVaccineWorksOnOriginal: true, ReanalysisYieldsVaccine: true, NewVaccineWorksOnRenamed: true}
	text := RenderEvasion(ren, true, false, true, rep)
	if !strings.Contains(text, "control-dependence") {
		t.Errorf("render:\n%s", text)
	}
}
