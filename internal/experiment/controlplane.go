package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"autovac/internal/fleet"
)

// The control-plane study measures vaccine *distribution* at fleet
// scale, independent of the emulation stack: how long after a publish
// does the last of N hosts hold the pack, what is the per-host sync
// latency distribution, and what does the fleet's polling traffic cost
// on the wire? It runs the same fleet twice — plain interval polling
// vs long-poll streaming (&wait=) — so the table is a direct ablation
// of the streaming push path.

// ControlPlaneConfig configures the distribution study.
type ControlPlaneConfig struct {
	// Hosts is the fleet size (default 100000).
	Hosts int
	// Waves is the number of measured publishes (default 3).
	Waves int
	// PollInterval is the plain-polling cadence (default 2s — a
	// realistic fleet-agent interval; the point of the study is what
	// that cadence costs relative to streaming).
	PollInterval time.Duration
	// LongPoll is the streaming wait (default 30s).
	LongPoll time.Duration
	// Seed drives agent phase jitter.
	Seed uint64
}

// ControlPlaneRow is one sync mode's measured outcome.
type ControlPlaneRow struct {
	// Mode is "poll" or "long-poll".
	Mode string
	// Result is the raw simulation outcome.
	Result *fleet.ControlPlaneResult
}

// ControlPlaneReport is the full study.
type ControlPlaneReport struct {
	// Hosts, Waves, and PollInterval echo the configuration.
	Hosts, Waves int
	PollInterval time.Duration
	// Rows holds the poll row then the long-poll row.
	Rows []ControlPlaneRow
}

// RunControlPlane races the two sync modes over identical fleets.
func RunControlPlane(ctx context.Context, cfg ControlPlaneConfig) (*ControlPlaneReport, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 100000
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 3
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	if cfg.LongPoll <= 0 {
		cfg.LongPoll = 30 * time.Second
	}

	base := fleet.ControlPlaneConfig{
		Hosts:        cfg.Hosts,
		Waves:        cfg.Waves,
		PollInterval: cfg.PollInterval,
		Seed:         cfg.Seed,
	}
	rep := &ControlPlaneReport{Hosts: cfg.Hosts, Waves: cfg.Waves, PollInterval: cfg.PollInterval}

	poll, err := fleet.SimulateControlPlane(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("experiment: control plane (poll): %w", err)
	}
	rep.Rows = append(rep.Rows, ControlPlaneRow{Mode: "poll", Result: poll})

	lp := base
	lp.LongPoll = cfg.LongPoll
	stream, err := fleet.SimulateControlPlane(ctx, lp)
	if err != nil {
		return nil, fmt.Errorf("experiment: control plane (long-poll): %w", err)
	}
	rep.Rows = append(rep.Rows, ControlPlaneRow{Mode: "long-poll", Result: stream})
	return rep, nil
}

// RenderControlPlane renders the study as a text table.
func RenderControlPlane(rep *ControlPlaneReport) string {
	var b strings.Builder
	b.WriteString("Control plane — delta distribution at fleet scale\n")
	fmt.Fprintf(&b, "%d hosts, %d publish waves; poll interval %v\n",
		rep.Hosts, rep.Waves, rep.PollInterval)
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %12s %10s\n",
		"mode", "converge", "p50", "p99", "requests", "bytes", "deltas")
	for _, row := range rep.Rows {
		r := row.Result
		fmt.Fprintf(&b, "%-10s %10v %10v %10v %10d %12d %10d\n",
			row.Mode,
			r.ConvergeTime.Round(time.Millisecond),
			r.SyncP50.Round(time.Millisecond),
			r.SyncP99.Round(time.Millisecond),
			r.Requests, r.BytesOnWire, r.Deltas)
	}
	if len(rep.Rows) == 2 {
		p, s := rep.Rows[0].Result, rep.Rows[1].Result
		if p.ConvergeTime > 0 && s.BytesOnWire > 0 {
			fmt.Fprintf(&b, "long-poll: %.1fx faster convergence, %.1fx fewer bytes on wire\n",
				float64(p.ConvergeTime)/float64(maxDuration(s.ConvergeTime, time.Millisecond)),
				float64(p.BytesOnWire)/float64(s.BytesOnWire))
		}
	}
	return b.String()
}

// maxDuration floors a duration for safe ratio rendering.
func maxDuration(d, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}
