package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"autovac/internal/fleet"
)

// The control-plane study measures vaccine *distribution* at fleet
// scale, independent of the emulation stack: how long after a publish
// does the last of N hosts hold the pack, what is the per-host sync
// latency distribution, and what does the fleet's polling traffic cost
// on the wire? It runs the same fleet under several transports so the
// table is a direct ablation of each distribution layer:
//
//   - interval polling vs long-poll streaming (the push path),
//   - JSON vs the binary delta codec (bytes on the wire),
//   - direct origin fan-out vs a tier of read-through edge relays
//     (origin load at very large fleets).

// ControlPlaneConfig configures the distribution study.
type ControlPlaneConfig struct {
	// Hosts is the fleet size (default 100000).
	Hosts int
	// Waves is the number of measured publishes (default 3).
	Waves int
	// VaccinesPerWave is the publish batch size (default 8 — a realistic
	// incremental pack, and big enough that encoding efficiency shows).
	VaccinesPerWave int
	// PollInterval is the plain-polling cadence (default 2s — a
	// realistic fleet-agent interval; the point of the study is what
	// that cadence costs relative to streaming).
	PollInterval time.Duration
	// LongPoll is the streaming wait (default 30s).
	LongPoll time.Duration
	// Relays, when > 0, switches the study to the two-tier topology:
	// that many edge relays between the origin and the fleet. The rows
	// become relay/json and relay/binary (both long-poll — a relay tier
	// exists to hold parked connections, so interval polling through it
	// measures nothing new).
	Relays int
	// ConvergeTimeout bounds each wave's convergence (default scales
	// with fleet size; a 1M-host run on few cores needs minutes).
	ConvergeTimeout time.Duration
	// Seed drives agent phase jitter.
	Seed uint64
}

// ControlPlaneRow is one sync mode's measured outcome.
type ControlPlaneRow struct {
	// Mode names the transport: "poll/json", "long-poll/json",
	// "long-poll/binary", "relay/json", "relay/binary".
	Mode string
	// Result is the raw simulation outcome.
	Result *fleet.ControlPlaneResult
}

// ControlPlaneReport is the full study.
type ControlPlaneReport struct {
	// Hosts, Waves, VaccinesPerWave, Relays, and PollInterval echo the
	// configuration.
	Hosts, Waves, VaccinesPerWave, Relays int
	PollInterval                          time.Duration
	// Rows holds one row per measured transport.
	Rows []ControlPlaneRow
}

// RunControlPlane races the sync modes over identical fleets. With
// cfg.Relays == 0 it measures poll/json, long-poll/json, and
// long-poll/binary against the origin directly; with cfg.Relays > 0 it
// measures relay/json and relay/binary through the two-tier topology.
func RunControlPlane(ctx context.Context, cfg ControlPlaneConfig) (*ControlPlaneReport, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 100000
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 3
	}
	if cfg.VaccinesPerWave <= 0 {
		cfg.VaccinesPerWave = 8
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	if cfg.LongPoll <= 0 {
		cfg.LongPoll = 30 * time.Second
	}
	if cfg.ConvergeTimeout <= 0 {
		// Convergence is CPU-bound in-process: scale the bound with the
		// fleet rather than wedging large runs on small machines.
		cfg.ConvergeTimeout = 60*time.Second + time.Duration(cfg.Hosts/1000)*time.Second
	}

	base := fleet.ControlPlaneConfig{
		Hosts:           cfg.Hosts,
		Waves:           cfg.Waves,
		VaccinesPerWave: cfg.VaccinesPerWave,
		PollInterval:    cfg.PollInterval,
		ConvergeTimeout: cfg.ConvergeTimeout,
		Seed:            cfg.Seed,
	}
	rep := &ControlPlaneReport{
		Hosts: cfg.Hosts, Waves: cfg.Waves,
		VaccinesPerWave: cfg.VaccinesPerWave, Relays: cfg.Relays,
		PollInterval: cfg.PollInterval,
	}

	var modes []struct {
		name   string
		mutate func(*fleet.ControlPlaneConfig)
	}
	if cfg.Relays > 0 {
		modes = []struct {
			name   string
			mutate func(*fleet.ControlPlaneConfig)
		}{
			{"relay/json", func(c *fleet.ControlPlaneConfig) {
				c.LongPoll, c.Relays = cfg.LongPoll, cfg.Relays
			}},
			{"relay/binary", func(c *fleet.ControlPlaneConfig) {
				c.LongPoll, c.Relays, c.Binary = cfg.LongPoll, cfg.Relays, true
			}},
		}
	} else {
		modes = []struct {
			name   string
			mutate func(*fleet.ControlPlaneConfig)
		}{
			{"poll/json", func(c *fleet.ControlPlaneConfig) {}},
			{"long-poll/json", func(c *fleet.ControlPlaneConfig) { c.LongPoll = cfg.LongPoll }},
			{"long-poll/binary", func(c *fleet.ControlPlaneConfig) {
				c.LongPoll, c.Binary = cfg.LongPoll, true
			}},
		}
	}
	for _, m := range modes {
		mc := base
		m.mutate(&mc)
		res, err := fleet.SimulateControlPlane(ctx, mc)
		if err != nil {
			return nil, fmt.Errorf("experiment: control plane (%s): %w", m.name, err)
		}
		rep.Rows = append(rep.Rows, ControlPlaneRow{Mode: m.name, Result: res})
	}
	return rep, nil
}

// findRow returns the first row whose mode matches, or nil.
func (rep *ControlPlaneReport) findRow(mode string) *fleet.ControlPlaneResult {
	for _, row := range rep.Rows {
		if row.Mode == mode {
			return row.Result
		}
	}
	return nil
}

// RenderControlPlane renders the study as a text table.
func RenderControlPlane(rep *ControlPlaneReport) string {
	var b strings.Builder
	b.WriteString("Control plane — delta distribution at fleet scale\n")
	fmt.Fprintf(&b, "%d hosts, %d publish waves x %d vaccines; poll interval %v",
		rep.Hosts, rep.Waves, rep.VaccinesPerWave, rep.PollInterval)
	if rep.Relays > 0 {
		fmt.Fprintf(&b, "; %d edge relays", rep.Relays)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s %11s %14s %10s\n",
		"mode", "converge", "p50", "p99", "requests", "origin-req", "bytes", "deltas")
	for _, row := range rep.Rows {
		r := row.Result
		fmt.Fprintf(&b, "%-16s %10v %10v %10v %10d %11d %14d %10d\n",
			row.Mode,
			r.ConvergeTime.Round(time.Millisecond),
			r.SyncP50.Round(time.Millisecond),
			r.SyncP99.Round(time.Millisecond),
			r.Requests, r.OriginRequests, r.BytesOnWire, r.Deltas)
	}

	if p, s := rep.findRow("poll/json"), rep.findRow("long-poll/json"); p != nil && s != nil &&
		p.ConvergeTime > 0 && s.BytesOnWire > 0 {
		fmt.Fprintf(&b, "long-poll: %.1fx faster convergence, %.1fx fewer bytes on wire than polling\n",
			float64(p.ConvergeTime)/float64(maxDuration(s.ConvergeTime, time.Millisecond)),
			float64(p.BytesOnWire)/float64(s.BytesOnWire))
	}
	js, bin := rep.findRow("long-poll/json"), rep.findRow("long-poll/binary")
	if js == nil {
		js, bin = rep.findRow("relay/json"), rep.findRow("relay/binary")
	}
	if js != nil && bin != nil && bin.BytesOnWire > 0 {
		fmt.Fprintf(&b, "binary codec: %.1fx fewer bytes on wire than JSON\n",
			float64(js.BytesOnWire)/float64(bin.BytesOnWire))
	}
	if rel := rep.findRow("relay/binary"); rel != nil && rel.Relays > 0 {
		fmt.Fprintf(&b, "relay tier: origin served %d requests for %d agents (%.1f per relay per wave); edge absorbed %d\n",
			rel.OriginRequests, rel.Hosts,
			float64(rel.OriginRequests)/float64(rel.Relays*rel.Waves),
			rel.EdgeRequests)
	}
	return b.String()
}

// maxDuration floors a duration for safe ratio rendering.
func maxDuration(d, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}
