package experiment

import (
	"errors"
	"fmt"
	"strings"

	"autovac/internal/core"
	"autovac/internal/emu"
	"autovac/internal/impact"
	"autovac/internal/winenv"
)

// AblationReport quantifies two design choices DESIGN.md calls out:
//
//   - LCS alignment vs. the paper's literal greedy-anchor Algorithm 1
//     (do the difference sets actually diverge on pipeline traces?), and
//   - result-flip detection vs. call-loss-only classification (how many
//     immunizing candidates does flip detection add?).
type AblationReport struct {
	// CandidatesTested is the number of (candidate, mutation) pairs
	// classified.
	CandidatesTested int
	// ImmunizingLCSFlips counts immunizing classifications with the
	// default analysis (LCS + flips).
	ImmunizingLCSFlips int
	// ImmunizingLCSNoFlips drops flip detection.
	ImmunizingLCSNoFlips int
	// ImmunizingGreedyFlips swaps the alignment for Algorithm 1.
	ImmunizingGreedyFlips int
	// GreedyDisagreements counts pairs where greedy and LCS produce a
	// different primary effect.
	GreedyDisagreements int
	// Failed counts (candidate, mutation) pairs whose classification
	// errored or panicked; the survivors are still tallied.
	Failed int
}

// Ablation classifies every Phase-I candidate of every profile under
// the three analysis variants and tallies the differences. Failures
// are isolated per candidate: a hostile sample's candidate that errors
// or panics is counted in Failed and joined into the returned error,
// while every other candidate is still classified.
func (s *Setup) Ablation(profiles []*core.Profile) (*AblationReport, error) {
	rep := &AblationReport{}
	var failures []error
	for _, prof := range profiles {
		for _, cand := range prof.Candidates {
			err := guard(func() error { return s.ablateOne(rep, prof, cand) })
			if err != nil {
				rep.Failed++
				failures = append(failures, fmt.Errorf("experiment: ablation %s: %w", prof.Sample.Name(), err))
			}
		}
	}
	return rep, errors.Join(failures...)
}

// ablateOne classifies a single (candidate, mutation) pair under the
// three analysis variants.
func (s *Setup) ablateOne(rep *AblationReport, prof *core.Profile, cand core.Candidate) error {
	call := cand.Call
	mode := emu.ForceFailure
	switch call.Op {
	case winenv.OpOpen.String(), winenv.OpQuery.String(), winenv.OpRead.String():
		mode = emu.ForceSuccess
	case winenv.OpCreate.String():
		mode = emu.ForceAlreadyExists
	}
	mutated, err := emu.Run(prof.Sample.Program, winenv.New(s.Pipeline.Identity()), emu.Options{
		Seed: s.Pipeline.Seed(),
		Mutations: []emu.Mutation{{
			API: call.API, CallerPC: call.CallerPC,
			Identifier: call.Identifier, Mode: mode,
		}},
	})
	if err != nil {
		return err
	}
	rep.CandidatesTested++
	base := impact.ClassifyWith(mutated, prof.Normal, impact.Options{})
	noFlips := impact.ClassifyWith(mutated, prof.Normal, impact.Options{DisableFlips: true})
	greedy := impact.ClassifyWith(mutated, prof.Normal, impact.Options{Greedy: true})
	if base.Immunizing() {
		rep.ImmunizingLCSFlips++
	}
	if noFlips.Immunizing() {
		rep.ImmunizingLCSNoFlips++
	}
	if greedy.Immunizing() {
		rep.ImmunizingGreedyFlips++
	}
	if greedy.Primary != base.Primary {
		rep.GreedyDisagreements++
	}
	return nil
}

// RenderAblation renders the ablation results.
func RenderAblation(rep *AblationReport) string {
	var b strings.Builder
	b.WriteString("Ablation — alignment algorithm and flip detection\n")
	fmt.Fprintf(&b, "candidate mutations classified:      %d\n", rep.CandidatesTested)
	fmt.Fprintf(&b, "immunizing (LCS + flips, default):   %d\n", rep.ImmunizingLCSFlips)
	fmt.Fprintf(&b, "immunizing (LCS, no flips):          %d\n", rep.ImmunizingLCSNoFlips)
	fmt.Fprintf(&b, "immunizing (greedy Algorithm 1):     %d\n", rep.ImmunizingGreedyFlips)
	fmt.Fprintf(&b, "greedy vs LCS primary disagreements: %d\n", rep.GreedyDisagreements)
	if rep.Failed > 0 {
		fmt.Fprintf(&b, "candidates failed (isolated):        %d\n", rep.Failed)
	}
	return b.String()
}
