// Package experiment regenerates every table and figure of the paper's
// evaluation (§VI) over the synthetic corpus: Table II (corpus mix),
// the Phase-I statistics and Figure 3 (resource-sensitive behaviour),
// Tables III–VI (vaccine generation, case studies, family statistics),
// Figure 4 (BDR distribution), Table VII (variant effectiveness), the
// clinic false-positive test, and the §VI-F performance measurements.
//
// Every experiment is deterministic in its seed; the benchreport
// command and bench_test.go are thin wrappers over this package.
package experiment

import (
	"fmt"
	"runtime/debug"

	"autovac/internal/core"
	"autovac/internal/exclusive"
	"autovac/internal/malware"
)

// guard runs one unit of experimental work with panic containment: a
// panic inside f comes back as an error carrying the captured stack,
// so one hostile sample cannot take down a whole experiment sweep.
// Callers wrap the returned error with unit attribution.
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return f()
}

// Setup bundles everything the experiments share: the corpus, the
// benign suite, the exclusiveness index, and a configured pipeline.
type Setup struct {
	// Samples is the malware corpus (Table II mix).
	Samples []*malware.Sample
	// Benign is the benign-software suite.
	Benign []*malware.Sample
	// Index is the benign-resource index.
	Index *exclusive.Index
	// Pipeline is the configured analysis pipeline.
	Pipeline *core.Pipeline
	// Generator regenerates variants deterministically.
	Generator *malware.Generator
	// Seed is the experiment seed.
	Seed int64
	// Workers bounds the analysis worker pool (0 = GOMAXPROCS). Results
	// are deterministic regardless of worker count.
	Workers int
}

// NewSetup builds an experiment setup with the given corpus size.
// Size 1716 reproduces the paper's corpus exactly; smaller sizes keep
// the same category mix for quick runs. The clinic test is not wired
// into the pipeline here (it is exercised by the dedicated
// false-positive experiment); the exclusiveness index is.
func NewSetup(seed int64, corpusSize int) (*Setup, error) {
	gen := malware.NewGenerator(seed)
	samples, err := gen.Corpus(corpusSize)
	if err != nil {
		return nil, fmt.Errorf("experiment: corpus: %w", err)
	}
	benign, err := malware.BenignCorpus()
	if err != nil {
		return nil, fmt.Errorf("experiment: benign corpus: %w", err)
	}
	ix, err := exclusive.BuildIndex(benign, uint64(seed))
	if err != nil {
		return nil, fmt.Errorf("experiment: index: %w", err)
	}
	return &Setup{
		Samples:   samples,
		Benign:    benign,
		Index:     ix,
		Pipeline:  core.New(core.Config{Seed: uint64(seed), Index: ix}),
		Generator: gen,
		Seed:      seed,
	}, nil
}

// CategoryCount is one Table II row.
type CategoryCount struct {
	Category malware.Category
	Count    int
	Percent  float64
}

// TableII computes the corpus classification (paper Table II).
func (s *Setup) TableII() []CategoryCount {
	counts := make(map[malware.Category]int)
	for _, sm := range s.Samples {
		counts[sm.Spec.Category]++
	}
	total := len(s.Samples)
	var rows []CategoryCount
	for _, cat := range malware.Categories() {
		rows = append(rows, CategoryCount{
			Category: cat,
			Count:    counts[cat],
			Percent:  100 * float64(counts[cat]) / float64(total),
		})
	}
	return rows
}
