package experiment

import (
	"context"
	"strings"
	"testing"
)

// TestTriageStudy runs the Phase-0 study on a reduced corpus: the
// hashtick band (one third of the appended hash-resolving samples)
// must be skipped, the packs must match, and the render must carry the
// soundness verdict.
func TestTriageStudy(t *testing.T) {
	s := smallSetup(t, 20)
	const perBand = 3
	stock := len(s.Samples)
	st, err := s.Triage(context.Background(), perBand)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != stock+3*perBand {
		t.Errorf("Samples = %d, want %d", st.Samples, stock+3*perBand)
	}
	if st.HashResolving != 3*perBand {
		t.Errorf("HashResolving = %d, want %d", st.HashResolving, 3*perBand)
	}
	if st.Skipped != perBand {
		t.Errorf("Skipped = %d, want the %d hashtick samples", st.Skipped, perBand)
	}
	if !st.Identical {
		t.Error("packs diverged: triage dropped a vaccine")
	}
	out := RenderTriage(st)
	for _, want := range []string{"Phase-0 triage study", "triage skipped:", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
