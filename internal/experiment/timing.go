package experiment

import (
	"fmt"
	"strings"
	"time"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// Timing reproduces the §VI-F performance evaluation as a measured
// table: vaccine-generation overhead (per-sample analysis, backward
// slicing, impact analysis) and deployment overhead (batch static
// injection, slice replay, daemon hook cost). The paper's absolute
// numbers come from 2013 hardware over real binaries; the structure —
// what is one-time vs recurring, what dominates — is the reproducible
// part.
type Timing struct {
	// SamplesTimed is the number of samples behind PerSampleAnalysis.
	SamplesTimed int
	// SamplesFailed counts samples whose analysis errored or panicked
	// during the timing sweep; they are excluded from the mean.
	SamplesFailed int
	// PerSampleAnalysis is the mean end-to-end Phase-I+II time
	// (paper: 789 s).
	PerSampleAnalysis time.Duration
	// BackwardSlicing is the mean slice-extraction time per identifier
	// (paper: 214 s).
	BackwardSlicing time.Duration
	// ImpactAnalysis is the mean mutated-run-plus-diff time per case
	// (paper: 2–3 min).
	ImpactAnalysis time.Duration
	// StaticBatchInjection is the time to install 373 static vaccines
	// on one host (paper: 34 s).
	StaticBatchInjection time.Duration
	// SliceReplay is the mean per-vaccine replay time (paper: 25.7 s).
	SliceReplay time.Duration
	// HookBaseline and HookWith119 are per-operation costs without a
	// daemon and with the paper's 119 partial-static vaccines.
	HookBaseline time.Duration
	HookWith119  time.Duration
	// EmulatorStepsPerSec is the raw emulated-instruction throughput of
	// pooled re-execution — the multiplier under Phase-I profiling,
	// Phase-II impact re-runs, and slice replays alike.
	EmulatorStepsPerSec float64
}

// HookAddedCost returns the absolute per-operation cost the 119-pattern
// daemon adds to a same-namespace resource operation. The paper reports
// the RELATIVE figure (<4.5%) against real Windows syscall latencies;
// on this in-memory substrate a base operation costs nanoseconds, so
// relative ratios do not transfer — the absolute added cost (a pattern
// scan within one namespace) is the meaningful number.
func (t *Timing) HookAddedCost() time.Duration {
	return t.HookWith119 - t.HookBaseline
}

// MeasureTiming runs the §VI-F measurements over a slice of the corpus.
func (s *Setup) MeasureTiming(sampleBudget int) (*Timing, error) {
	tm := &Timing{}

	// Per-sample end-to-end analysis.
	n := sampleBudget
	if n <= 0 || n > len(s.Samples) {
		n = len(s.Samples)
	}
	start := time.Now()
	for _, sm := range s.Samples[:n] {
		// Per-sample isolation: a failing sample is excluded from the
		// mean rather than aborting the whole measurement.
		if _, err := s.Pipeline.SafeAnalyze(sm); err != nil {
			tm.SamplesFailed++
		}
	}
	tm.SamplesTimed = n - tm.SamplesFailed
	tm.PerSampleAnalysis = time.Since(start) / time.Duration(maxInt(tm.SamplesTimed, 1))

	// Backward slicing on an algorithm-deterministic identifier.
	spec := &malware.Spec{Name: "timing-algo", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-7`}}}
	prog := malware.MustEmit(spec)
	tr, err := emu.Run(prog, winenv.New(s.Pipeline.Identity()),
		emu.Options{Seed: s.Pipeline.Seed(), RecordSteps: true, Registry: s.Pipeline.Registry()})
	if err != nil {
		return nil, err
	}
	seq := tr.CallsTo("CreateMutexA")[0].Seq
	const sliceReps = 50
	start = time.Now()
	var sl *determinism.Slice
	for i := 0; i < sliceReps; i++ {
		sl, err = determinism.Extract(prog, tr, seq)
		if err != nil {
			return nil, err
		}
	}
	tm.BackwardSlicing = time.Since(start) / sliceReps

	// Impact analysis: one mutated re-run plus classification.
	zeus, err := s.Generator.FamilySample(malware.Zeus)
	if err != nil {
		return nil, err
	}
	normal, err := emu.Run(zeus.Program, winenv.New(s.Pipeline.Identity()),
		emu.Options{Seed: s.Pipeline.Seed(), Registry: s.Pipeline.Registry()})
	if err != nil {
		return nil, err
	}
	const impactReps = 25
	start = time.Now()
	for i := 0; i < impactReps; i++ {
		mutated, err := emu.Run(zeus.Program, winenv.New(s.Pipeline.Identity()),
			emu.Options{Seed: s.Pipeline.Seed(), Registry: s.Pipeline.Registry(),
				Mutations: []emu.Mutation{{API: "OpenMutexA", CallerPC: -1,
					Identifier: "_AVIRA_2109", Mode: emu.ForceSuccess}}})
		if err != nil {
			return nil, err
		}
		impact.Classify(mutated, normal)
	}
	tm.ImpactAnalysis = time.Since(start) / impactReps

	// Deployment: 373 static vaccines (the paper's count) on one host.
	static := make([]vaccine.Vaccine, 373)
	for i := range static {
		static[i] = vaccine.Vaccine{
			ID: fmt.Sprintf("timing/mutex/%d", i), Sample: "timing",
			Resource: winenv.KindMutex, Identifier: fmt.Sprintf("TIMING-%04d", i),
			Class: determinism.Static, Op: "open", API: "OpenMutexA",
			Effect: impact.Full, Polarity: vaccine.SimulatePresence,
			Delivery: vaccine.DirectInjection,
		}
	}
	env := winenv.New(s.Pipeline.Identity())
	d := s.Pipeline.NewDaemonFor(env)
	start = time.Now()
	for i := range static {
		if err := d.Install(static[i]); err != nil {
			return nil, err
		}
	}
	tm.StaticBatchInjection = time.Since(start)

	// Slice replay per algorithmic vaccine.
	const replayReps = 25
	start = time.Now()
	for i := 0; i < replayReps; i++ {
		if _, err := sl.Replay(winenv.New(s.Pipeline.Identity()), s.Pipeline.Seed()); err != nil {
			return nil, err
		}
	}
	tm.SliceReplay = time.Since(start) / replayReps

	// Hook overhead: per-op cost with no daemon vs 119 patterns.
	tm.HookBaseline = hookCost(s, 0)
	tm.HookWith119 = hookCost(s, 119)

	// Raw emulator throughput through a pooled Runner — the Phase-II
	// steady-state shape (one arena, many runs).
	runner, err := emu.NewRunner(zeus.Program, winenv.New(s.Pipeline.Identity()))
	if err != nil {
		return nil, err
	}
	defer runner.Close()
	const emuReps = 200
	steps := 0
	start = time.Now()
	for i := 0; i < emuReps; i++ {
		tr, err := runner.Run(emu.Options{Seed: s.Pipeline.Seed(), Registry: s.Pipeline.Registry()})
		if err != nil {
			return nil, err
		}
		steps += tr.StepCount
	}
	if el := time.Since(start); el > 0 {
		tm.EmulatorStepsPerSec = float64(steps) / el.Seconds()
	}
	return tm, nil
}

// hookCost measures the mean per-operation cost of a resource probe on a
// host with n partial-static daemon patterns installed.
func hookCost(s *Setup, n int) time.Duration {
	env := winenv.New(s.Pipeline.Identity())
	env.SetEventLogging(false)
	if n > 0 {
		d := s.Pipeline.NewDaemonFor(env)
		for i := 0; i < n; i++ {
			_ = d.Install(vaccine.Vaccine{
				ID: fmt.Sprintf("hook/mutex/%d", i), Sample: "hook",
				Resource: winenv.KindMutex, Pattern: fmt.Sprintf("HOOKFAM%04d-*", i),
				Class: determinism.PartialStatic, Op: "create", API: "CreateMutexA",
				Effect: impact.Full, Polarity: vaccine.SimulatePresence,
				Delivery: vaccine.VaccineDaemon,
			})
		}
	}
	const reps = 4000
	req := winenv.Request{Kind: winenv.KindMutex, Op: winenv.OpCreate,
		Name: "benign-instance-mutex", Principal: "app"}
	start := time.Now()
	for i := 0; i < reps; i++ {
		env.Do(req)
		env.Remove(winenv.KindMutex, req.Name)
	}
	return time.Since(start) / reps
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderTiming renders the §VI-F table with the paper's reference
// numbers alongside.
func RenderTiming(tm *Timing) string {
	var b strings.Builder
	b.WriteString("Performance (§VI-F) — paper (2013 testbed, real binaries) vs measured\n")
	fmt.Fprintf(&b, "%-44s %-12s %s\n", "Measurement", "Paper", "Measured")
	row := func(what, paper string, d time.Duration) {
		fmt.Fprintf(&b, "%-44s %-12s %v\n", what, paper, d.Round(time.Nanosecond))
	}
	row(fmt.Sprintf("analysis per sample (n=%d)", tm.SamplesTimed), "789 s", tm.PerSampleAnalysis)
	row("backward slicing per identifier", "214 s", tm.BackwardSlicing)
	row("impact analysis per mutation case", "2-3 min", tm.ImpactAnalysis)
	row("install 373 static vaccines", "34 s", tm.StaticBatchInjection)
	row("slice replay per algorithmic vaccine", "25.7 s", tm.SliceReplay)
	row("resource op, no daemon", "-", tm.HookBaseline)
	row("resource op, 119 daemon patterns", "<4.5% ovh", tm.HookWith119)
	row("daemon cost added per same-namespace op", "", tm.HookAddedCost())
	fmt.Fprintf(&b, "%-44s %-12s %.2f Minstr/s\n",
		"emulator throughput (pooled re-execution)", "-", tm.EmulatorStepsPerSec/1e6)
	b.WriteString("(relative hook ratios do not transfer from an in-memory substrate;\n")
	b.WriteString(" against a ~10µs real syscall the added cost stays in the paper's band)\n")
	return b.String()
}
