package experiment

import (
	"strings"
	"testing"
)

func TestAblation(t *testing.T) {
	s := smallSetup(t, 60)
	_, profiles, err := s.RunPhase1()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Ablation(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CandidatesTested == 0 {
		t.Fatal("no candidates tested")
	}
	// Flip detection can only ADD immunizing classifications.
	if rep.ImmunizingLCSNoFlips > rep.ImmunizingLCSFlips {
		t.Errorf("no-flips %d > flips %d", rep.ImmunizingLCSNoFlips, rep.ImmunizingLCSFlips)
	}
	// And on this corpus it matters: flip-only vaccines (blocked
	// persistence writes) exist.
	if rep.ImmunizingLCSNoFlips == rep.ImmunizingLCSFlips {
		t.Error("flip detection added nothing; expected flip-only vaccines in the corpus")
	}
	// Greedy and LCS agree on the overwhelming majority of pipeline
	// traces (single divergence region) — that is why the paper's
	// simple Algorithm 1 suffices in practice.
	if frac := float64(rep.GreedyDisagreements) / float64(rep.CandidatesTested); frac > 0.05 {
		t.Errorf("greedy disagreement rate %.2f > 5%%", frac)
	}
	text := RenderAblation(rep)
	if !strings.Contains(text, "Ablation") {
		t.Errorf("render:\n%s", text)
	}
}
