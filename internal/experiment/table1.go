package experiment

import (
	"fmt"
	"strings"

	"autovac/internal/winapi"
)

// TableIRow describes one API's analysis label — the paper's Table I
// ("Labeling examples for OpenMutex/ReadFile") generalized to any
// registered API.
type TableIRow struct {
	API          string
	ResourceType string
	// Identifier says where the resource identifier comes from.
	Identifier string
	// Success and Failure are the EAX/GetLastError conventions.
	Success string
	Failure string
	// TaintTarget is "return value" or "argument".
	TaintTarget string
}

// TableI renders the labelling rows for the requested APIs (defaults to
// the paper's two examples plus one of each additional convention).
func TableI(apis ...string) []TableIRow {
	if len(apis) == 0 {
		apis = []string{"OpenMutexA", "ReadFile", "RegOpenKeyExA", "CreateFileA", "GetFileAttributesA"}
	}
	reg := winapi.Standard()
	var rows []TableIRow
	for _, name := range apis {
		spec, ok := reg.Lookup(name)
		if !ok || !spec.IsResource() {
			continue
		}
		l := spec.Label
		kind := l.Resource.String()
		row := TableIRow{
			API:          name,
			ResourceType: strings.ToUpper(kind[:1]) + kind[1:],
		}
		switch {
		case l.IdentifierViaHandle && l.ValueNameArg > 0:
			row.Identifier = fmt.Sprintf("arg %d: handle map + arg %d value name", l.IdentifierArg+1, l.ValueNameArg+1)
		case l.IdentifierViaHandle:
			row.Identifier = fmt.Sprintf("arg %d: handle for handle map", l.IdentifierArg+1)
		default:
			row.Identifier = fmt.Sprintf("arg %d: name string", l.IdentifierArg+1)
		}
		if l.SuccessRet == 0 && l.FailureRet != 0 && l.FailureRet < 0x10000 {
			// Status-convention APIs (registry): EAX carries the status.
			row.Success = "EAX: 0 (ERROR_SUCCESS)"
			row.Failure = fmt.Sprintf("EAX: status %#02x", l.FailureRet)
		} else {
			row.Success = fmt.Sprintf("EAX: %s", retDesc(l.SuccessRet))
			row.Failure = fmt.Sprintf("EAX: %s, GetLastError: %#02x", retDesc(l.FailureRet), uint32(l.FailureErr))
		}
		if l.Taint == winapi.TaintArg {
			row.TaintTarget = fmt.Sprintf("argument %d", l.TaintArgIndex+1)
		} else {
			row.TaintTarget = "return value"
		}
		rows = append(rows, row)
	}
	return rows
}

// retDesc renders a return-value convention.
func retDesc(v uint32) string {
	switch v {
	case 0:
		return "NULL/0"
	case 1:
		return "TRUE"
	case 0xFFFFFFFF:
		return "INVALID_HANDLE_VALUE"
	default:
		return fmt.Sprintf("%#x (valid handle)", v)
	}
}

// RenderTableI renders the labelling table.
func RenderTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("Table I — API labelling examples\n")
	fmt.Fprintf(&b, "%-20s %-10s %-38s %-28s %-36s %s\n",
		"API", "Resource", "Resource-identifier", "Success", "Failure", "Taint target")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-10s %-38s %-28s %-36s %s\n",
			r.API, r.ResourceType, r.Identifier, r.Success, r.Failure, r.TaintTarget)
	}
	return b.String()
}

// Hooked reports the hook-set size: how many resource-labelled APIs
// Phase-I instruments (the paper hooks 89 system/library calls).
func Hooked() (resourceAPIs, totalAPIs int) {
	reg := winapi.Standard()
	return len(reg.ResourceAPIs()), reg.Len()
}
