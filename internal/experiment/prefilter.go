package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"autovac/internal/core"
	"autovac/internal/vaccine"
)

// PrefilterStudy compares a full corpus analysis with the static taint
// pre-filter off (the dynamic baseline) and on. The pre-filter is a
// sound over-approximation of the Phase-I dynamic taint analysis, so
// the two runs must produce byte-identical vaccine packs; the study
// reports how many samples the filter proved candidate-free (Phase-I
// emulation skipped) and the wall-clock on both sides, and flags any
// pack divergence as a soundness violation.
type PrefilterStudy struct {
	// Samples is the corpus size both runs covered.
	Samples int
	// Filtered counts samples the static analysis proved candidate-free
	// (their Phase-I emulation was skipped).
	Filtered int
	// DynamicWall and PrefilterWall are the two runs' wall-clock times.
	DynamicWall   time.Duration
	PrefilterWall time.Duration
	// Vaccines is the vaccine count (identical in both runs when sound).
	Vaccines int
	// Identical reports whether the two packs had the same digest. A
	// false value means the pre-filter skipped a sample that had a
	// vaccine — a soundness bug.
	Identical bool
}

// FilteredRatio returns the fraction of samples skipped.
func (p *PrefilterStudy) FilteredRatio() float64 {
	if p.Samples == 0 {
		return 0
	}
	return float64(p.Filtered) / float64(p.Samples)
}

// Prefilter runs the study: one corpus analysis with the static
// pre-filter off, one with it on, packs compared by digest.
func (s *Setup) Prefilter(ctx context.Context) (*PrefilterStudy, error) {
	run := func(pre bool) (*vaccine.Pack, *core.RunStats, time.Duration, error) {
		t0 := time.Now()
		results, stats, err := s.Pipeline.AnalyzeCorpus(ctx, s.Samples, core.CorpusOptions{
			Workers:         s.Workers,
			StaticPrefilter: pre,
		})
		wall := time.Since(t0)
		if err != nil {
			return nil, nil, wall, err
		}
		pack := &vaccine.Pack{Generator: "experiment/prefilter"}
		for _, res := range results {
			if res != nil {
				pack.Vaccines = append(pack.Vaccines, res.Vaccines...)
			}
		}
		return pack, stats, wall, nil
	}
	dynPack, _, dynWall, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiment: prefilter baseline: %w", err)
	}
	prePack, preStats, preWall, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiment: prefilter run: %w", err)
	}
	return &PrefilterStudy{
		Samples:       len(s.Samples),
		Filtered:      preStats.StaticallyFiltered,
		DynamicWall:   dynWall,
		PrefilterWall: preWall,
		Vaccines:      len(dynPack.Vaccines),
		Identical:     dynPack.Digest() == prePack.Digest(),
	}, nil
}

// RenderPrefilter renders the study as a small report block.
func RenderPrefilter(p *PrefilterStudy) string {
	var b strings.Builder
	b.WriteString("Static pre-filter study (Phase-I emulation skipping)\n")
	fmt.Fprintf(&b, "samples:             %d\n", p.Samples)
	fmt.Fprintf(&b, "statically filtered: %d (%.1f%%)\n", p.Filtered, 100*p.FilteredRatio())
	fmt.Fprintf(&b, "dynamic-only wall:   %v\n", p.DynamicWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "prefilter wall:      %v\n", p.PrefilterWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "vaccines:            %d\n", p.Vaccines)
	if p.Identical {
		b.WriteString("packs: byte-identical (pre-filter is sound on this corpus)\n")
	} else {
		b.WriteString("packs: DIVERGED — the pre-filter dropped a vaccine (soundness bug)\n")
	}
	return b.String()
}
