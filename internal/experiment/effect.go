package experiment

import (
	"errors"
	"fmt"
	"sort"

	"autovac/internal/clinic"
	"autovac/internal/emu"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// BDRPoint is one vaccine's measured Behavior Decreasing Ratio with its
// effect class — the data behind Figure 4.
type BDRPoint struct {
	VaccineID string
	Sample    string
	Effect    impact.Effect
	BDR       float64
}

// Figure4 measures BDR for the generated vaccines, bucketed by effect
// type (§VI-E, Figure 4). maxPerEffect bounds the number of vaccines
// measured per effect class (0 = no bound). Failures are isolated per
// vaccine: a measurement that errors or panics is joined into the
// returned error while every other vaccine's point is still returned.
func (s *Setup) Figure4(st *GenStats, samplesByName map[string]*malware.Sample, maxPerEffect int) ([]BDRPoint, error) {
	perEffect := make(map[impact.Effect]int)
	var points []BDRPoint
	var failures []error
	for i := range st.Vaccines {
		v := &st.Vaccines[i]
		if maxPerEffect > 0 && perEffect[v.Effect] >= maxPerEffect {
			continue
		}
		sm := samplesByName[v.Sample]
		if sm == nil {
			continue
		}
		var bdr float64
		err := guard(func() error {
			var err error
			bdr, err = s.Pipeline.MeasureBDR(sm, v)
			return err
		})
		if err != nil {
			failures = append(failures, fmt.Errorf("experiment: bdr %s: %w", v.ID, err))
			continue
		}
		perEffect[v.Effect]++
		points = append(points, BDRPoint{
			VaccineID: v.ID, Sample: v.Sample, Effect: v.Effect, BDR: bdr,
		})
	}
	return points, errors.Join(failures...)
}

// BDRSummary summarizes Figure 4 per effect class.
type BDRSummary struct {
	Effect           impact.Effect
	Count            int
	Min, Max, Median float64
}

// SummarizeBDR buckets BDR points by effect.
func SummarizeBDR(points []BDRPoint) []BDRSummary {
	byEffect := make(map[impact.Effect][]float64)
	for _, p := range points {
		byEffect[p.Effect] = append(byEffect[p.Effect], p.BDR)
	}
	var out []BDRSummary
	for _, e := range []impact.Effect{
		impact.Full, impact.TypeI, impact.TypeII, impact.TypeIII, impact.TypeIV,
	} {
		vals := byEffect[e]
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		out = append(out, BDRSummary{
			Effect: e,
			Count:  len(vals),
			Min:    vals[0],
			Max:    vals[len(vals)-1],
			Median: vals[len(vals)/2],
		})
	}
	return out
}

// TableVIIRow is one family row of the variant-effectiveness experiment
// (paper Table VII).
type TableVIIRow struct {
	Family      malware.Family
	VaccineN    int
	Types       string
	IdealCases  int
	Verified    int
	SuccessRate float64
}

// TableVII runs the variant experiment: for each of the six families,
// generate vaccines from the canonical sample, then test every vaccine
// against fresh polymorphic variants (paper: 5 variants per family,
// 82% overall success; some variants drop a behaviour, so some
// vaccine×variant pairs fail — exactly like the Zeus variants that no
// longer used sdra64.exe).
// Families are isolated from each other: a family whose analysis or
// variant replay fails (error or panic) is skipped — its failure joined
// into the returned error — while every other family's row is returned.
func (s *Setup) TableVII(variantsPerFamily int, dropProb float64) ([]TableVIIRow, error) {
	var rows []TableVIIRow
	var failures []error
	for _, fam := range malware.Families() {
		var row TableVIIRow
		err := guard(func() error {
			var err error
			row, err = s.tableVIIFamily(fam, variantsPerFamily, dropProb)
			return err
		})
		if err != nil {
			failures = append(failures, fmt.Errorf("experiment: table VII %s: %w", fam, err))
			continue
		}
		rows = append(rows, row)
	}
	return rows, errors.Join(failures...)
}

// tableVIIFamily runs the variant experiment for one family.
func (s *Setup) tableVIIFamily(fam malware.Family, variantsPerFamily int, dropProb float64) (TableVIIRow, error) {
	var row TableVIIRow
	canonical, err := s.Generator.FamilySample(fam)
	if err != nil {
		return row, err
	}
	res, err := s.Pipeline.SafeAnalyze(canonical)
	if err != nil {
		return row, fmt.Errorf("analyze: %w", err)
	}
	variants, err := s.Generator.Variants(canonical, variantsPerFamily, dropProb)
	if err != nil {
		return row, err
	}
	row = TableVIIRow{
		Family:     fam,
		VaccineN:   len(res.Vaccines),
		Types:      vaccineTypes(res.Vaccines),
		IdealCases: len(res.Vaccines) * len(variants),
	}
	for _, variant := range variants {
		// Natural variant behaviour.
		normal, err := emu.Run(variant.Program, winenv.New(s.Pipeline.Identity()),
			emu.Options{Seed: s.Pipeline.Seed()})
		if err != nil {
			return row, err
		}
		for i := range res.Vaccines {
			ok, err := s.vaccineWorksOn(variant, &res.Vaccines[i], normal)
			if err != nil {
				return row, err
			}
			if ok {
				row.Verified++
			}
		}
	}
	if row.IdealCases > 0 {
		row.SuccessRate = float64(row.Verified) / float64(row.IdealCases)
	}
	return row, nil
}

// vaccineWorksOn deploys one vaccine and checks whether the variant's
// behaviour is immunized relative to its own natural run: the
// vaccinated execution must show an immunization effect under the same
// differential classification Phase-II uses.
func (s *Setup) vaccineWorksOn(variant *malware.Sample, v *vaccine.Vaccine, normal *trace.Trace) (bool, error) {
	env := winenv.New(s.Pipeline.Identity())
	d := s.Pipeline.NewDaemonFor(env)
	if err := d.Install(*v); err != nil {
		return false, err
	}
	deployed, err := emu.Run(variant.Program, env, emu.Options{Seed: s.Pipeline.Seed()})
	if err != nil {
		return false, err
	}
	r := impact.Classify(deployed, normal)
	return r.Immunizing(), nil
}

// vaccineTypes summarizes the resource kinds of a vaccine set
// ("mutex, file" style).
func vaccineTypes(vs []vaccine.Vaccine) string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range vs {
		k := v.Resource.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	s := ""
	for i, k := range out {
		if i > 0 {
			s += ","
		}
		s += k
	}
	return s
}

// FalsePositiveReport is the clinic-test experiment of §VI-E.
type FalsePositiveReport struct {
	VaccinesTested int
	ProgramsTested int
	Rejections     []clinic.Rejection
}

// FalsePositiveTest injects generated vaccines into the full benign
// suite and reports interference (the paper observed none for its
// shipped vaccines; candidates that would interfere are exactly what
// the clinic exists to catch).
func (s *Setup) FalsePositiveTest(vaccines []vaccine.Vaccine) (*FalsePositiveReport, error) {
	var rep *clinic.Report
	err := guard(func() error {
		var err error
		rep, err = clinic.Run(vaccines, s.Benign, clinic.Config{
			Seed:     s.Pipeline.Seed(),
			Identity: s.Pipeline.Identity(),
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	return &FalsePositiveReport{
		VaccinesTested: len(vaccines),
		ProgramsTested: rep.ProgramsTested,
		Rejections:     rep.Rejected,
	}, nil
}
