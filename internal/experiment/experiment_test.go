package experiment

import (
	"strings"
	"testing"

	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/winenv"
)

// smallSetup builds a setup over a reduced corpus (same Table II mix)
// to keep the unit tests fast; the full 1716-sample run is exercised by
// the benchmark harness.
func smallSetup(t *testing.T, size int) *Setup {
	t.Helper()
	s, err := NewSetup(42, size)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableII(t *testing.T) {
	s := smallSetup(t, 1716)
	rows := s.TableII()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := malware.TableIICounts()
	for _, r := range rows {
		if r.Count != want[r.Category] {
			t.Errorf("%s = %d, want %d", r.Category, r.Count, want[r.Category])
		}
	}
	text := RenderTableII(rows)
	for _, frag := range []string{"Backdoor", "722", "42.0", "1716"} {
		if !strings.Contains(text, frag) {
			t.Errorf("render missing %q:\n%s", frag, text)
		}
	}
}

func TestPhase1StatsAndFigure3(t *testing.T) {
	s := smallSetup(t, 120)
	st, profiles, err := s.RunPhase1()
	if err != nil {
		t.Fatal(err)
	}
	if st.SamplesRun != len(s.Samples) || len(profiles) != st.SamplesRun {
		t.Fatalf("runs = %d/%d", st.SamplesRun, len(profiles))
	}
	if st.Occurrences == 0 {
		t.Fatal("no occurrences")
	}
	// The paper's shape: a large majority of occurrences deviate
	// execution (80.3% in the paper).
	ratio := st.SensitiveRatio()
	if ratio < 0.5 || ratio > 1.0 {
		t.Errorf("sensitive ratio = %.2f, want 0.5..1.0", ratio)
	}
	// Most samples are flagged.
	if st.SamplesFlagged < st.SamplesRun/2 {
		t.Errorf("flagged = %d of %d", st.SamplesFlagged, st.SamplesRun)
	}

	// Figure 3 shape: file is the dominant resource class.
	fileShare := st.KindShare(winenv.KindFile)
	for _, kind := range winenv.Kinds() {
		if kind == winenv.KindFile {
			continue
		}
		if share := st.KindShare(kind); share > fileShare {
			t.Errorf("%s share %.2f exceeds file share %.2f", kind, share, fileShare)
		}
	}
	rows := Figure3(st)
	sum := 0.0
	for _, r := range rows {
		sum += r.Total
	}
	if sum < 99.0 || sum > 101.0 {
		t.Errorf("figure 3 shares sum to %.2f%%", sum)
	}
	text := RenderFigure3(rows)
	if !strings.Contains(text, "file") || !strings.Contains(text, "mutex") {
		t.Errorf("render:\n%s", text)
	}
	_ = RenderPhase1(st)
}

func TestPhase2TablesSmallCorpus(t *testing.T) {
	s := smallSetup(t, 80)
	_, profiles, err := s.RunPhase1()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := s.RunPhase2(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Vaccines) == 0 {
		t.Fatal("no vaccines over corpus")
	}
	if gen.SamplesWithVaccines == 0 || gen.SamplesWithVaccines > gen.SamplesAnalyzed {
		t.Errorf("samples with vaccines = %d of %d", gen.SamplesWithVaccines, gen.SamplesAnalyzed)
	}
	if gen.StaticCount+gen.AlgorithmicCount != len(gen.Vaccines) {
		t.Error("class counts do not add up")
	}
	// Paper shape: static identifiers dominate (373 vs 163).
	if gen.StaticCount <= gen.AlgorithmicCount {
		t.Errorf("static=%d algorithmic=%d, want static majority", gen.StaticCount, gen.AlgorithmicCount)
	}

	// Table IV: totals add up; Type-III (persistence) is the most
	// common partial type in the paper.
	t4 := TableIV(gen)
	all := 0
	for _, r := range t4 {
		all += r.All
	}
	if all != len(gen.Vaccines) {
		t.Errorf("table IV total = %d, want %d", all, len(gen.Vaccines))
	}
	text := RenderTableIV(t4)
	if !strings.Contains(text, "Total") {
		t.Errorf("render:\n%s", text)
	}

	// Table V: shares per category sum to ~100 for non-empty categories.
	t5 := TableV(gen)
	for _, r := range t5 {
		if r.Total == 0 {
			continue
		}
		sum := 0.0
		for _, v := range r.ResourceShare {
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s resource shares sum to %.1f", r.Category, sum)
		}
		if r.DirectShare+r.DaemonShare < 99 || r.DirectShare+r.DaemonShare > 101 {
			t.Errorf("%s deployment shares sum to %.1f", r.Category, r.DirectShare+r.DaemonShare)
		}
	}
	_ = RenderTableV(t5)

	// Table III: ten representative rows with fingerprints.
	t3 := TableIII(gen, s.Samples, 10)
	if len(t3) == 0 {
		t.Fatal("table III empty")
	}
	for _, r := range t3 {
		if r.SampleMD5 == "" || r.Identifier == "" {
			t.Errorf("incomplete row: %+v", r)
		}
	}
	_ = RenderTableIII(t3)
}

func TestTableVIZeus(t *testing.T) {
	s := smallSetup(t, 40)
	_, profiles, err := s.RunPhase1()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := s.RunPhase2(profiles)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := TableVI(gen)
	if !ok {
		t.Fatal("Zeus _AVIRA_ vaccine not found in corpus results")
	}
	if v.Resource != winenv.KindMutex {
		t.Errorf("table VI vaccine = %+v", v)
	}
	text := RenderTableVI(v, ok)
	if !strings.Contains(text, "_AVIRA_") {
		t.Errorf("render:\n%s", text)
	}
}

func TestFigure4BDR(t *testing.T) {
	s := smallSetup(t, 40)
	_, profiles, err := s.RunPhase1()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := s.RunPhase2(profiles)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*malware.Sample)
	for _, sm := range s.Samples {
		byName[sm.Name()] = sm
	}
	points, err := s.Figure4(gen, byName, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no BDR points")
	}
	sums := SummarizeBDR(points)
	if len(sums) == 0 {
		t.Fatal("no BDR summaries")
	}
	// Shape: full-immunization vaccines have the highest BDR band.
	var full, partialMax float64
	for _, sm := range sums {
		if sm.Effect == impact.Full {
			full = sm.Median
		} else if sm.Median > partialMax {
			partialMax = sm.Median
		}
	}
	if full > 0 && partialMax > 0 && full < partialMax-0.3 {
		t.Errorf("full median %.2f far below partial max %.2f", full, partialMax)
	}
	for _, p := range points {
		if p.BDR < 0 || p.BDR > 1 {
			t.Errorf("BDR out of range: %+v", p)
		}
		if p.Effect == impact.Full && p.BDR == 1.0 {
			t.Errorf("full BDR exactly 1.0 (pre-exit probes should count): %+v", p)
		}
	}
	_ = RenderFigure4(sums)
}

func TestTableVIIVariants(t *testing.T) {
	s := smallSetup(t, 10)
	rows, err := s.TableVII(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	ideal, verified := 0, 0
	for _, r := range rows {
		if r.VaccineN == 0 {
			t.Errorf("%s produced no vaccines", r.Family)
		}
		if r.Verified > r.IdealCases {
			t.Errorf("%s verified %d > ideal %d", r.Family, r.Verified, r.IdealCases)
		}
		ideal += r.IdealCases
		verified += r.Verified
	}
	ratio := float64(verified) / float64(max(ideal, 1))
	// Paper: 82% overall; variants drop behaviours so the ratio sits
	// below 100% but stays high.
	if ratio < 0.55 || ratio > 1.0 {
		t.Errorf("overall ratio = %.2f, want 0.55..1.0", ratio)
	}
	text := RenderTableVII(rows)
	if !strings.Contains(text, "Total") || !strings.Contains(text, "Conficker") {
		t.Errorf("render:\n%s", text)
	}
}

func TestFalsePositiveExperiment(t *testing.T) {
	s := smallSetup(t, 20)
	_, profiles, err := s.RunPhase1()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := s.RunPhase2(profiles)
	if err != nil {
		t.Fatal(err)
	}
	limit := gen.Vaccines
	if len(limit) > 10 {
		limit = limit[:10]
	}
	rep, err := s.FalsePositiveTest(limit)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline-passed vaccines (exclusiveness-filtered) must not
	// interfere with the benign suite.
	if len(rep.Rejections) != 0 {
		t.Errorf("false positives: %v", rep.Rejections)
	}
	if rep.ProgramsTested < 40 {
		t.Errorf("benign suite = %d", rep.ProgramsTested)
	}
	_ = RenderFalsePositive(rep)
	_ = RenderGenSummary(gen)
}
