package experiment

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"autovac/internal/core"
	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// GenStats aggregates Phase-II over the corpus (§VI-C): every generated
// vaccine, joined with its sample's classification.
type GenStats struct {
	// Vaccines is every vaccine generated across the corpus.
	Vaccines []vaccine.Vaccine
	// SamplesWithVaccines counts samples that yielded at least one
	// vaccine (the paper: 536 vaccines from 210 samples).
	SamplesWithVaccines int
	// SamplesAnalyzed is the number of flagged samples fed to Phase-II.
	SamplesAnalyzed int
	// StaticCount and AlgorithmicCount split vaccines by identifier
	// class (the paper: 373 static, 163 algorithm-deterministic or
	// partial static).
	StaticCount      int
	AlgorithmicCount int
}

// RunPhase2 generates vaccines for every flagged profile. Generation
// runs on the Setup's worker pool; aggregation is serial and in sample
// order, so the statistics are worker-count independent. Per-sample
// failures (errors and panics) are isolated: healthy samples still
// contribute to the statistics, and the failures come back joined in
// sample order.
func (s *Setup) RunPhase2(profiles []*core.Profile) (*GenStats, error) {
	st := &GenStats{}
	results := make([]*core.Result, len(profiles))
	errs := make([]error, len(profiles))
	s.parallelIndexes(len(profiles), func(i int) {
		if !profiles[i].HasVaccineCandidates() {
			return
		}
		errs[i] = guard(func() error {
			var err error
			results[i], err = s.Pipeline.Phase2(profiles[i])
			return err
		})
	})
	var failures []error
	for i, prof := range profiles {
		if errs[i] != nil {
			failures = append(failures, fmt.Errorf("experiment: phase2 %s: %w", prof.Sample.Name(), errs[i]))
			continue
		}
		res := results[i]
		if res == nil {
			continue
		}
		st.SamplesAnalyzed++
		if len(res.Vaccines) == 0 {
			continue
		}
		st.SamplesWithVaccines++
		st.Vaccines = append(st.Vaccines, res.Vaccines...)
		for _, v := range res.Vaccines {
			if v.Class == determinism.Static {
				st.StaticCount++
			} else {
				st.AlgorithmicCount++
			}
		}
	}
	return st, errors.Join(failures...)
}

// TableIVRow is one row of Table IV: a resource kind with vaccine
// counts per immunization type.
type TableIVRow struct {
	Resource winenv.ResourceKind
	// Counts indexes by effect.
	Counts map[impact.Effect]int
	All    int
}

// TableIV buckets the generated vaccines by resource × immunization
// type (paper Table IV).
func TableIV(st *GenStats) []TableIVRow {
	byKind := make(map[winenv.ResourceKind]*TableIVRow)
	for _, kind := range winenv.Kinds() {
		byKind[kind] = &TableIVRow{Resource: kind, Counts: make(map[impact.Effect]int)}
	}
	for _, v := range st.Vaccines {
		row := byKind[v.Resource]
		row.Counts[v.Effect]++
		row.All++
	}
	var rows []TableIVRow
	for _, kind := range winenv.Kinds() {
		rows = append(rows, *byKind[kind])
	}
	return rows
}

// TableVRow is one column pair of Table V: for a malware category, the
// distribution of vaccine resources and the deployment split.
type TableVRow struct {
	Category malware.Category
	// ResourceShare maps kind -> percentage of the category's vaccines.
	ResourceShare map[winenv.ResourceKind]float64
	// DirectShare and DaemonShare split by delivery.
	DirectShare float64
	DaemonShare float64
	// Total is the category's vaccine count.
	Total int
}

// TableV joins vaccine types with malware classification (paper
// Table V).
func TableV(st *GenStats) []TableVRow {
	type agg struct {
		byKind map[winenv.ResourceKind]int
		direct int
		total  int
	}
	m := make(map[malware.Category]*agg)
	for _, v := range st.Vaccines {
		cat := malware.Category(v.Category)
		a := m[cat]
		if a == nil {
			a = &agg{byKind: make(map[winenv.ResourceKind]int)}
			m[cat] = a
		}
		a.byKind[v.Resource]++
		a.total++
		if v.Delivery == vaccine.DirectInjection {
			a.direct++
		}
	}
	var rows []TableVRow
	for _, cat := range malware.Categories() {
		a := m[cat]
		row := TableVRow{Category: cat, ResourceShare: make(map[winenv.ResourceKind]float64)}
		if a == nil || a.total == 0 {
			rows = append(rows, row)
			continue
		}
		row.Total = a.total
		for kind, n := range a.byKind {
			row.ResourceShare[kind] = 100 * float64(n) / float64(a.total)
		}
		row.DirectShare = 100 * float64(a.direct) / float64(a.total)
		row.DaemonShare = 100 - row.DirectShare
		rows = append(rows, row)
	}
	return rows
}

// TableIIIRow is one zoom-in row of Table III: a representative
// vaccine with its operation types, impact codes, identifier, and the
// sample fingerprint.
type TableIIIRow struct {
	Seq        int
	Type       winenv.ResourceKind
	OperType   string
	Impact     string
	Identifier string
	SampleMD5  string
}

// TableIII selects representative vaccines across resource kinds and
// effects (paper Table III shows 10).
func TableIII(st *GenStats, samples []*malware.Sample, n int) []TableIIIRow {
	md5Of := make(map[string]string, len(samples))
	for _, s := range samples {
		md5Of[s.Name()] = s.MD5
	}
	// Prefer diversity: iterate kinds round-robin over effect classes.
	picked := make([]vaccine.Vaccine, 0, n)
	used := make(map[int]bool)
	for _, wantFull := range []bool{true, false} {
		for _, kind := range []winenv.ResourceKind{
			winenv.KindMutex, winenv.KindFile, winenv.KindRegistry,
			winenv.KindService, winenv.KindWindow, winenv.KindLibrary,
			winenv.KindProcess,
		} {
			for i, v := range st.Vaccines {
				if len(picked) >= n {
					break
				}
				if used[i] || v.Resource != kind || v.FullImmunization() != wantFull {
					continue
				}
				used[i] = true
				picked = append(picked, v)
				break
			}
		}
	}
	for i := 0; len(picked) < n && i < len(st.Vaccines); i++ {
		if !used[i] {
			used[i] = true
			picked = append(picked, st.Vaccines[i])
		}
	}
	var rows []TableIIIRow
	for i, v := range picked {
		ident := v.Identifier
		if v.Class == determinism.PartialStatic {
			ident = v.Pattern
		}
		rows = append(rows, TableIIIRow{
			Seq:        i + 1,
			Type:       v.Resource,
			OperType:   operCodes(v.Op),
			Impact:     impactCodes(v),
			Identifier: ident,
			SampleMD5:  md5Of[v.Sample],
		})
	}
	return rows
}

// operCodes renders ops in Table III's letter codes: Check Existence
// (E), Create (C), Read (R), Write (W).
func operCodes(ops string) string {
	codes := map[string]string{
		"create": "C", "open": "E", "query": "E",
		"read": "R", "write": "W", "delete": "D",
	}
	seen := make(map[string]bool)
	var out []string
	for _, op := range strings.Split(ops, ",") {
		c, ok := codes[op]
		if !ok || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// impactCodes renders effects in Table III's letter codes: Termination
// (T), Process Hijacking (H), Persistence (P), Kernel Injection (K),
// Network Massive Attack (N).
func impactCodes(v vaccine.Vaccine) string {
	codes := map[impact.Effect]string{
		impact.Full:    "T",
		impact.TypeI:   "K",
		impact.TypeII:  "N",
		impact.TypeIII: "P",
		impact.TypeIV:  "H",
	}
	var out []string
	seen := make(map[string]bool)
	for _, e := range append([]impact.Effect{v.Effect}, v.Effects...) {
		c, ok := codes[e]
		if !ok || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return strings.Join(out, ",")
}

// TableVI returns the high-profile Zeus example row (paper Table VI):
// the _AVIRA_ mutex vaccine and its impact description.
func TableVI(st *GenStats) (vaccine.Vaccine, bool) {
	for _, v := range st.Vaccines {
		if v.Family == string(malware.Zeus) && v.Resource == winenv.KindMutex &&
			strings.HasPrefix(v.Identifier, "_AVIRA_") {
			return v, true
		}
	}
	return vaccine.Vaccine{}, false
}
