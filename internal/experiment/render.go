package experiment

import (
	"fmt"
	"strings"

	"autovac/internal/impact"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// RenderTableII renders the corpus classification table.
func RenderTableII(rows []CategoryCount) string {
	var b strings.Builder
	b.WriteString("Table II — Malware classification\n")
	fmt.Fprintf(&b, "%-12s %9s %10s\n", "Category", "#Malware", "Percent")
	total := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %9.2f%%\n", r.Category, r.Count, r.Percent)
		total += r.Count
	}
	fmt.Fprintf(&b, "%-12s %9d %9.2f%%\n", "Total", total, 100.0)
	return b.String()
}

// RenderPhase1 renders the §VI-B candidate-selection statistics.
func RenderPhase1(st *Phase1Stats) string {
	var b strings.Builder
	b.WriteString("Phase-I — Candidate selection (§VI-B)\n")
	fmt.Fprintf(&b, "samples profiled:            %d\n", st.SamplesRun)
	fmt.Fprintf(&b, "samples flagged:             %d (%.1f%%)\n",
		st.SamplesFlagged, 100*float64(st.SamplesFlagged)/float64(max(st.SamplesRun, 1)))
	fmt.Fprintf(&b, "resource-API occurrences:    %d\n", st.Occurrences)
	fmt.Fprintf(&b, "execution-deviating (taint): %d (%.1f%%)\n",
		st.Sensitive, 100*st.SensitiveRatio())
	return b.String()
}

// RenderFigure3 renders the resource-sensitive behaviour distribution
// as a text chart.
func RenderFigure3(rows []Figure3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3 — Malware's resource-sensitive behaviours\n")
	fmt.Fprintf(&b, "%-10s", "Resource")
	ops := winenv.Ops()
	for _, op := range ops {
		fmt.Fprintf(&b, " %8s", op)
	}
	fmt.Fprintf(&b, " %8s\n", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Kind)
		for _, op := range ops {
			fmt.Fprintf(&b, " %7.2f%%", r.Share[op])
		}
		fmt.Fprintf(&b, " %7.2f%%\n", r.Total)
	}
	return b.String()
}

// RenderTableIV renders vaccine counts by resource × immunization type.
func RenderTableIV(rows []TableIVRow) string {
	var b strings.Builder
	b.WriteString("Table IV — Vaccine generation by resource and immunization type\n")
	effects := []impact.Effect{impact.Full, impact.TypeI, impact.TypeII, impact.TypeIII, impact.TypeIV}
	fmt.Fprintf(&b, "%-10s", "Resource")
	for _, e := range effects {
		fmt.Fprintf(&b, " %9s", e)
	}
	fmt.Fprintf(&b, " %6s\n", "All")
	totals := make(map[impact.Effect]int)
	all := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Resource)
		for _, e := range effects {
			fmt.Fprintf(&b, " %9d", r.Counts[e])
			totals[e] += r.Counts[e]
		}
		fmt.Fprintf(&b, " %6d\n", r.All)
		all += r.All
	}
	fmt.Fprintf(&b, "%-10s", "Total")
	for _, e := range effects {
		fmt.Fprintf(&b, " %9d", totals[e])
	}
	fmt.Fprintf(&b, " %6d\n", all)
	return b.String()
}

// RenderTableV renders vaccine statistics per malware category.
func RenderTableV(rows []TableVRow) string {
	var b strings.Builder
	b.WriteString("Table V — Vaccine statistics on different malware families\n")
	fmt.Fprintf(&b, "%-10s", "Vaccine")
	for _, r := range rows {
		fmt.Fprintf(&b, " %11s", r.Category)
	}
	b.WriteString("\n")
	for _, kind := range winenv.Kinds() {
		fmt.Fprintf(&b, "%-10s", kind)
		for _, r := range rows {
			fmt.Fprintf(&b, " %10.0f%%", r.ResourceShare[kind])
		}
		b.WriteString("\n")
	}
	b.WriteString("Deployment\n")
	fmt.Fprintf(&b, "%-10s", "Direct")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.0f%%", r.DirectShare)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s", "Daemon")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.0f%%", r.DaemonShare)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s", "(n)")
	for _, r := range rows {
		fmt.Fprintf(&b, " %11d", r.Total)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderTableIII renders the representative vaccine zoom-in.
func RenderTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	b.WriteString("Table III — Vaccine samples (E=check existence, C=create, R=read, W=write;\n")
	b.WriteString("            T=termination, H=process hijacking, P=persistence, K=kernel injection, N=network)\n")
	fmt.Fprintf(&b, "%-4s %-9s %-9s %-8s %-44s %s\n",
		"Seq", "Type", "OperType", "Impact", "Identifier", "Sample")
	for _, r := range rows {
		ident := r.Identifier
		if len(ident) > 44 {
			ident = ident[:41] + "..."
		}
		fmt.Fprintf(&b, "%-4d %-9s %-9s %-8s %-44s %s\n",
			r.Seq, r.Type, r.OperType, r.Impact, ident, r.SampleMD5)
	}
	return b.String()
}

// RenderTableVI renders the high-profile Zeus vaccine example.
func RenderTableVI(v vaccine.Vaccine, ok bool) string {
	var b strings.Builder
	b.WriteString("Table VI — Example of a high-profile malware vaccine\n")
	fmt.Fprintf(&b, "%-12s %-14s %-7s %s\n", "Malware", "Vaccine", "Type", "Impact Description")
	if !ok {
		b.WriteString("(no Zeus mutex vaccine generated)\n")
		return b.String()
	}
	desc := "Stop process hijacking"
	if v.Effect == impact.Full {
		desc = "Terminate execution"
	}
	fmt.Fprintf(&b, "%-12s %-14s %-7s %s\n", v.Family, v.Identifier, v.Resource, desc)
	return b.String()
}

// RenderFigure4 renders the BDR distribution summary.
func RenderFigure4(sums []BDRSummary) string {
	var b strings.Builder
	b.WriteString("Figure 4 — Distribution of Behavior Decreasing Ratio (BDR)\n")
	fmt.Fprintf(&b, "%-10s %6s %8s %8s %8s\n", "Effect", "n", "min", "median", "max")
	for _, s := range sums {
		fmt.Fprintf(&b, "%-10s %6d %7.0f%% %7.0f%% %7.0f%%\n",
			s.Effect, s.Count, 100*s.Min, 100*s.Median, 100*s.Max)
	}
	return b.String()
}

// RenderTableVII renders the variant-effectiveness experiment.
func RenderTableVII(rows []TableVIIRow) string {
	var b strings.Builder
	b.WriteString("Table VII — Vaccine effectiveness on malware variants\n")
	fmt.Fprintf(&b, "%-12s %9s %-20s %6s %9s %6s\n",
		"Malware", "Vaccine#", "Type", "Ideal", "Verified", "Ratio")
	ideal, verified := 0, 0
	totalVacc := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %-20s %6d %9d %5.0f%%\n",
			r.Family, r.VaccineN, r.Types, r.IdealCases, r.Verified, 100*r.SuccessRate)
		ideal += r.IdealCases
		verified += r.Verified
		totalVacc += r.VaccineN
	}
	ratio := 0.0
	if ideal > 0 {
		ratio = float64(verified) / float64(ideal)
	}
	fmt.Fprintf(&b, "%-12s %9d %-20s %6d %9d %5.0f%%\n",
		"Total", totalVacc, "", ideal, verified, 100*ratio)
	return b.String()
}

// RenderGenSummary renders the §VI-C headline numbers.
func RenderGenSummary(st *GenStats) string {
	var b strings.Builder
	b.WriteString("Phase-II — Vaccine generation (§VI-C)\n")
	fmt.Fprintf(&b, "samples analyzed:        %d\n", st.SamplesAnalyzed)
	fmt.Fprintf(&b, "samples with vaccines:   %d\n", st.SamplesWithVaccines)
	fmt.Fprintf(&b, "vaccines generated:      %d\n", len(st.Vaccines))
	fmt.Fprintf(&b, "static identifiers:      %d\n", st.StaticCount)
	fmt.Fprintf(&b, "algorithmic/partial:     %d\n", st.AlgorithmicCount)
	return b.String()
}

// RenderFalsePositive renders the clinic false-positive experiment.
func RenderFalsePositive(rep *FalsePositiveReport) string {
	var b strings.Builder
	b.WriteString("False-positive test — Malware clinic (§VI-E)\n")
	fmt.Fprintf(&b, "vaccines tested:   %d\n", rep.VaccinesTested)
	fmt.Fprintf(&b, "benign programs:   %d\n", rep.ProgramsTested)
	fmt.Fprintf(&b, "interferences:     %d\n", len(rep.Rejections))
	for _, r := range rep.Rejections {
		fmt.Fprintf(&b, "  rejected: %s\n", r)
	}
	return b.String()
}
