package experiment_test

import (
	"strings"
	"testing"

	"autovac/internal/experiment"
	"autovac/internal/winenv"
)

func TestRunEpidemic(t *testing.T) {
	rep, err := experiment.RunEpidemic(experiment.EpidemicConfig{
		Hosts: 24, Waves: 6, Fanout: 2, PublishWave: 1,
		Latencies: []int{0, 2}, Seed: 42,
	})
	if err != nil {
		t.Fatalf("RunEpidemic: %v", err)
	}
	if len(rep.Vaccines) == 0 || rep.Vaccines[0].Resource != winenv.KindDomain {
		t.Fatalf("expected a domain vaccine, got %v", rep.Vaccines)
	}
	if rep.Vaccines[0].Identifier != rep.Killswitch {
		t.Errorf("vaccine identifier %q != killswitch %q",
			rep.Vaccines[0].Identifier, rep.Killswitch)
	}
	// Latencies {0, 2} plus the control.
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	control := rep.Rows[len(rep.Rows)-1]
	if control.Latency != -1 {
		t.Fatalf("last row is not the control: %+v", control)
	}
	// Immunized fleets converge strictly below the unprotected control,
	// and a faster sync never does worse than a slower one.
	prev := 0
	for _, r := range rep.Rows[:len(rep.Rows)-1] {
		if r.FinalInfected >= control.FinalInfected {
			t.Errorf("latency %d final %d not below control %d",
				r.Latency, r.FinalInfected, control.FinalInfected)
		}
		if r.Immunized == 0 {
			t.Errorf("latency %d immunized no hosts", r.Latency)
		}
		if r.FinalInfected < prev {
			t.Errorf("faster sync did worse: %+v", rep.Rows)
		}
		prev = r.FinalInfected
	}

	out := experiment.RenderEpidemic(rep)
	for _, want := range []string{"Epidemic", "control", "+0 waves", "+2 waves", rep.Killswitch} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
