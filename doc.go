// Package autovac is a from-scratch Go reproduction of
// "AUTOVAC: Towards Automatically Extracting System Resource Constraints
// and Generating Vaccines for Malware Immunization" (ICDCS 2013).
//
// The repository implements the paper's full pipeline — dynamic taint
// analysis over resource-related APIs, trace differential impact
// analysis, determinism analysis with backward program slicing, and
// vaccine delivery by direct injection or a resident daemon — together
// with every substrate the original prototype relied on: a Windows-like
// resource environment, an x86-flavoured instruction set and emulator,
// a labelled API surface, a synthetic malware corpus matching the
// paper's evaluation mix, and a benign-software suite for exclusiveness
// analysis and the clinic test.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the
// paper-versus-measured comparison. The benchmark harness in
// bench_test.go regenerates every table and figure of the paper's §VI.
package autovac
