// Fleet immunization: a corpus-wide vaccine pack on real machines.
//
// The paper's §VI-E installs 200 vaccines on everyday-use lab machines
// and §VII argues the footprint is tiny ("most generated vaccines in
// practice are just some files, mutexes, registry entries, whose sizes
// are tiny or even with 0 byte"). This example reproduces that story at
// fleet scale: analyse a malware corpus once, deduplicate the vaccines
// (one resource per fleet, however many samples produced it), install
// the pack on a set of workstations, and measure how much of a fresh
// attack wave the fleet now shrugs off — while the benign suite keeps
// running untouched.
//
// Run with:
//
//	go run ./examples/fleet_immunization
package main

import (
	"fmt"
	"log"

	"autovac/internal/core"
	"autovac/internal/emu"
	"autovac/internal/exclusive"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

const (
	seed       = 42
	corpusSize = 120 // samples captured and analysed
	waveSize   = 40  // fresh attack wave (variants of corpus samples)
	machines   = 4   // everyday-use lab machines (§VI-E)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen := malware.NewGenerator(seed)
	corpus, err := gen.Corpus(corpusSize)
	if err != nil {
		return err
	}
	benign, err := malware.BenignCorpus()
	if err != nil {
		return err
	}
	index, err := exclusive.BuildIndex(benign, seed)
	if err != nil {
		return err
	}
	pipeline := core.New(core.Config{Seed: seed, Index: index})

	// Analyse the whole corpus once (the one-time analysis-side cost).
	var all []vaccine.Vaccine
	for _, s := range corpus {
		res, err := pipeline.Analyze(s)
		if err != nil {
			return err
		}
		all = append(all, res.Vaccines...)
	}
	deduped := vaccine.Dedupe(all)
	fmt.Printf("corpus: %d samples -> %d vaccines, %d after fleet dedupe\n",
		len(corpus), len(all), len(deduped))

	// Install the pack on each machine.
	hosts := make([]*winenv.Env, machines)
	for i := range hosts {
		id := winenv.DefaultIdentity()
		id.ComputerName = fmt.Sprintf("LAB-PC-%02d", i+1)
		hosts[i] = winenv.New(id)
		malware.PrepareBenignEnv(hosts[i])
		d := pipeline.NewDaemonFor(hosts[i])
		installed := 0
		for _, v := range deduped {
			if err := d.Install(v); err == nil {
				installed++
			}
		}
		if i == 0 {
			fmt.Printf("installed %d vaccines per machine\n\n", installed)
		}
	}

	// A fresh attack wave: polymorphic variants of corpus samples.
	var wave []*malware.Sample
	for i := 0; len(wave) < waveSize && i < len(corpus); i++ {
		if !corpus[i].Spec.ResourceSensitive() {
			continue
		}
		vs, err := gen.Variants(corpus[i], 1, 0.2)
		if err != nil {
			return err
		}
		wave = append(wave, vs...)
	}

	stopped, weakened, unaffected := 0, 0, 0
	for wi, attack := range wave {
		host := hosts[wi%machines]
		normal, err := emu.Run(attack.Program, winenv.New(host.Identity()), emu.Options{Seed: seed})
		if err != nil {
			return err
		}
		// Run against the live host (clones would drop daemon hooks).
		got, err := emu.Run(attack.Program, host, emu.Options{Seed: seed})
		if err != nil {
			return err
		}
		r := impact.Classify(got, normal)
		switch {
		case got.Exit == trace.ExitProcess && normal.Exit != trace.ExitProcess:
			stopped++
		case r.Immunizing():
			weakened++
		default:
			unaffected++
		}
	}
	fmt.Printf("attack wave of %d variants against the vaccinated fleet:\n", len(wave))
	fmt.Printf("  fully stopped:      %d\n", stopped)
	fmt.Printf("  payload weakened:   %d\n", weakened)
	fmt.Printf("  unaffected:         %d\n", unaffected)

	// The benign suite still runs cleanly on a vaccinated machine.
	broken := 0
	for _, b := range benign {
		tr, err := emu.Run(b.Program, hosts[0].Clone(), emu.Options{Seed: seed})
		if err != nil {
			return err
		}
		if tr.Exit == trace.ExitFault {
			broken++
		}
	}
	fmt.Printf("\nbenign programs on the vaccinated fleet: %d/%d run cleanly\n",
		len(benign)-broken, len(benign))
	return nil
}
