// Fleet immunization: corpus-wide vaccine distribution to real machines.
//
// The paper's §VI-E installs 200 vaccines on everyday-use lab machines
// and §VII argues the footprint is tiny. This example reproduces that
// story at fleet scale, end-to-end through the distribution subsystem
// (internal/fleet): analyse a malware corpus once, deduplicate the
// vaccines, publish them in two waves to a sync server, let a fleet of
// concurrent host agents converge on the latest pack via delta sync
// (ETag/304 steady-state polling, retries over an injected-fault
// transport), and then measure how much of a fresh attack wave the
// immunized fleet shrugs off — compared against unprotected control
// hosts, and while the benign suite keeps running untouched.
//
// Run with:
//
//	go run ./examples/fleet_immunization
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"autovac/internal/core"
	"autovac/internal/emu"
	"autovac/internal/exclusive"
	"autovac/internal/fleet"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

const (
	seed       = 42
	corpusSize = 120 // samples captured and analysed
	waveSize   = 40  // fresh attack wave (variants of corpus samples)
	machines   = 8   // lab machines running fleet agents (§VI-E)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen := malware.NewGenerator(seed)
	corpus, err := gen.Corpus(corpusSize)
	if err != nil {
		return err
	}
	benign, err := malware.BenignCorpus()
	if err != nil {
		return err
	}
	index, err := exclusive.BuildIndex(benign, seed)
	if err != nil {
		return err
	}
	pipeline := core.New(core.Config{Seed: seed, Index: index})

	// Analyse the whole corpus once (the one-time analysis-side cost).
	// The corpus run is fault-isolated: a hostile sample that errors or
	// panics costs only its own vaccines, never the fleet's pack.
	results, stats, runErr := pipeline.AnalyzeAllContext(context.Background(), corpus, 0)
	if runErr != nil {
		fmt.Printf("corpus: %d sample(s) failed analysis (isolated): %v\n", stats.Failed, runErr)
	}
	var all []vaccine.Vaccine
	for _, res := range results {
		if res != nil {
			all = append(all, res.Vaccines...)
		}
	}
	deduped := vaccine.Dedupe(all)
	fmt.Printf("corpus: %d samples analysed in %v -> %d vaccines, %d after fleet dedupe\n",
		stats.Analyzed, stats.Wall.Round(time.Millisecond), len(all), len(deduped))

	// Distribute through the fleet subsystem: the analysis site
	// publishes in two waves (day-one pack, then a later update), and
	// one agent per lab machine pulls deltas over HTTP — with a fault
	// injected on every 6th pack request to show the retry path.
	split := len(deduped) * 2 / 3
	res, err := fleet.Simulate(context.Background(), fleet.SimConfig{
		Hosts:        machines,
		Waves:        [][]vaccine.Vaccine{deduped[:split], deduped[split:]},
		Seed:         seed,
		Generator:    "autovac-fleet-example",
		FailEveryNth: 6,
		Identity: func(i int) winenv.HostIdentity {
			id := winenv.DefaultIdentity()
			id.ComputerName = fmt.Sprintf("LAB-PC-%02d", i+1)
			id.IPAddress = fmt.Sprintf("10.0.0.%d", i+10)
			return id
		},
		Prepare: func(i int, env *winenv.Env) { malware.PrepareBenignEnv(env) },
	})
	if err != nil {
		// Host failures are isolated too: the rest of the fleet still
		// converged, so keep going with the survivors.
		if res == nil {
			return err
		}
		fmt.Printf("fleet sync: %d host(s) failed (isolated): %v\n", res.Failed, err)
	}
	fmt.Printf("fleet sync: %d/%d agents converged at version %d (2 waves)\n",
		res.Converged, machines, res.Version)
	fmt.Printf("  server: %d requests, %d deltas, %d 304s, %d checkins, %d bytes\n",
		res.Server.Requests, res.Server.DeltasServed, res.Server.NotModified,
		res.Server.Checkins, res.Server.BytesServed)
	fmt.Printf("  agents: %d installs, %d retries after injected faults\n\n",
		res.Stats.Applied, res.Stats.Retries)

	// A fresh attack wave: polymorphic variants of corpus samples.
	var wave []*malware.Sample
	for i := 0; len(wave) < waveSize && i < len(corpus); i++ {
		if !corpus[i].Spec.ResourceSensitive() {
			continue
		}
		vs, err := gen.Variants(corpus[i], 1, 0.2)
		if err != nil {
			return err
		}
		wave = append(wave, vs...)
	}

	// Replay the wave against the immunized fleet and against
	// unprotected control hosts with the same identities.
	stopped, weakened, unaffected, controlInfected := 0, 0, 0, 0
	for wi, attack := range wave {
		host := res.Agents[wi%machines].Env()
		normal, err := emu.Run(attack.Program, winenv.New(host.Identity()), emu.Options{Seed: seed})
		if err != nil {
			return err
		}
		if normal.Exit != trace.ExitProcess {
			controlInfected++
		}
		// Run against the live host (clones would drop daemon hooks).
		got, err := emu.Run(attack.Program, host, emu.Options{Seed: seed})
		if err != nil {
			return err
		}
		r := impact.Classify(got, normal)
		switch {
		case got.Exit == trace.ExitProcess && normal.Exit != trace.ExitProcess:
			stopped++
		case r.Immunizing():
			weakened++
		default:
			unaffected++
		}
	}
	fmt.Printf("attack wave of %d variants:\n", len(wave))
	fmt.Printf("  ran to payload on unprotected controls: %d\n", controlInfected)
	fmt.Printf("  against the immunized fleet:\n")
	fmt.Printf("    fully stopped:      %d\n", stopped)
	fmt.Printf("    payload weakened:   %d\n", weakened)
	fmt.Printf("    unaffected:         %d\n", unaffected)

	// The benign suite still runs cleanly on a vaccinated machine.
	broken := 0
	for _, b := range benign {
		tr, err := emu.Run(b.Program, res.Agents[0].Env().Clone(), emu.Options{Seed: seed})
		if err != nil {
			return err
		}
		if tr.Exit == trace.ExitFault {
			broken++
		}
	}
	fmt.Printf("\nbenign programs on the vaccinated fleet: %d/%d run cleanly\n",
		len(benign)-broken, len(benign))
	return nil
}
