// Conficker-style worm propagation with and without vaccination.
//
// This example motivates the paper's use case (§II-A): "If we can
// capture the binary at the initial infection stage, we can quickly
// generate vaccines and protect our uninfected machines from the
// attacks." It simulates a small enterprise network, lets the worm
// propagate, then repeats the epidemic after pre-injecting the
// algorithm-deterministic mutex vaccine (extracted by the pipeline from
// patient zero's infection) into part of the fleet.
//
// The vaccine is per-host: the marker name derives from each machine's
// computer name, so the daemon replays the extracted program slice on
// every host — exactly the Conficker case study of §VI-D.
//
// Run with:
//
//	go run ./examples/conficker_worm
package main

import (
	"fmt"
	"log"

	"autovac/internal/core"
	"autovac/internal/emu"
	"autovac/internal/exclusive"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

const (
	seed     = 7
	fleet    = 24 // machines on the network
	coverage = 12 // machines that receive the vaccine
	rounds   = 6  // propagation rounds
)

// host is one machine on the simulated network.
type host struct {
	env      *winenv.Env
	infected bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	worm, err := malware.NewGenerator(seed).FamilySample(malware.Conficker)
	if err != nil {
		return err
	}
	fmt.Printf("worm: %s (md5 %s)\n\n", worm.Name(), worm.MD5)

	// Patient zero is captured and analysed; the pipeline extracts the
	// vaccines, including the algorithm-deterministic mutex.
	benign, err := malware.BenignCorpus()
	if err != nil {
		return err
	}
	index, err := exclusive.BuildIndex(benign, seed)
	if err != nil {
		return err
	}
	pipeline := core.New(core.Config{Seed: seed, Index: index})
	res, err := pipeline.Analyze(worm)
	if err != nil {
		return err
	}
	var mutexVaccine *vaccine.Vaccine
	for i := range res.Vaccines {
		if res.Vaccines[i].Resource == winenv.KindMutex {
			mutexVaccine = &res.Vaccines[i]
			break
		}
	}
	if mutexVaccine == nil {
		return fmt.Errorf("no mutex vaccine extracted (got %d vaccines)", len(res.Vaccines))
	}
	fmt.Printf("extracted vaccine: %s\n", mutexVaccine.String())
	fmt.Printf("  (identifier class %s: the daemon replays a %d-step slice per host)\n\n",
		mutexVaccine.Class, mutexVaccine.Slice.SourceSteps)

	// Epidemic 1: unprotected fleet.
	unprotected := epidemic(worm, nil, pipeline)
	// Epidemic 2: half the fleet vaccinated before the outbreak.
	protected := epidemic(worm, mutexVaccine, pipeline)

	fmt.Println("round   infected (unprotected)   infected (50% vaccinated)")
	for r := 0; r < len(unprotected); r++ {
		fmt.Printf("%5d   %22d   %25d\n", r, unprotected[r], protected[r])
	}
	fmt.Printf("\nfinal: %d/%d infected without vaccines, %d/%d with %d vaccinated hosts\n",
		unprotected[len(unprotected)-1], fleet,
		protected[len(protected)-1], fleet, coverage)
	return nil
}

// epidemic runs the propagation simulation and returns the infected
// count after each round. If v is non-nil it is injected into the
// `coverage` machines furthest from patient zero before the outbreak.
func epidemic(worm *malware.Sample, v *vaccine.Vaccine, pipeline *core.Pipeline) []int {
	hosts := make([]*host, fleet)
	for i := range hosts {
		id := winenv.DefaultIdentity()
		id.ComputerName = fmt.Sprintf("CORP-PC-%02d", i)
		id.IPAddress = fmt.Sprintf("10.0.0.%d", i+10)
		hosts[i] = &host{env: winenv.New(id)}
		// Patient zero's half of the subnet stays unprotected; the
		// vaccine reaches the other half before the worm does.
		if v != nil && i >= fleet-coverage {
			d := pipeline.NewDaemonFor(hosts[i].env)
			if err := d.Install(*v); err != nil {
				log.Fatalf("deploy on %s: %v", id.ComputerName, err)
			}
		}
	}
	// Patient zero.
	hosts[0].infected = infect(worm, hosts[0])
	counts := []int{count(hosts)}

	// Each round, every infected machine probes the next machines on
	// the subnet (sequential scanning, Conficker-style).
	for r := 0; r < rounds; r++ {
		var targets []int
		for i, h := range hosts {
			if !h.infected {
				continue
			}
			targets = append(targets, (i+1)%fleet, (i+2)%fleet, (i+5)%fleet)
		}
		for _, t := range targets {
			if !hosts[t].infected {
				hosts[t].infected = infect(worm, hosts[t])
			}
		}
		counts = append(counts, count(hosts))
	}
	return counts
}

// infect runs the worm on a host; infection succeeded when the worm ran
// its payload (did not exit at the marker probe).
func infect(worm *malware.Sample, h *host) bool {
	tr, err := emu.Run(worm.Program, h.env, emu.Options{Seed: seed})
	if err != nil || tr.Exit == trace.ExitFault {
		return false
	}
	// The worm considers the machine taken when it exited on its marker.
	return tr.Exit != trace.ExitProcess
}

func count(hosts []*host) int {
	n := 0
	for _, h := range hosts {
		if h.infected {
			n++
		}
	}
	return n
}
