// Killswitch-worm immunization, end to end.
//
// This example closes the paper's loop (§II-A): "If we can capture the
// binary at the initial infection stage, we can quickly generate
// vaccines and protect our uninfected machines from the attacks." A
// WannaCry-style worm probes a killswitch domain before detonating;
// patient zero's binary is analysed under a scripted pseudo-C2
// scenario, the pipeline extracts the killswitch as a domain vaccine
// (force-success wins: registering the domain stands the worm down),
// and the vaccinated fleet races the epidemic.
//
// The race is the interesting part. The vaccine pack is published to a
// fleet registry at wave 1, and each fleet syncs it after a different
// latency — the infection curve flattens exactly when the sinkhole
// registration lands, while the unprotected control saturates.
//
// Run with:
//
//	go run ./examples/conficker_worm
package main

import (
	"fmt"
	"log"

	"autovac/internal/core"
	"autovac/internal/fleet"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

const (
	seed        = 42
	hosts       = 48 // machines on the network
	waves       = 10 // propagation rounds
	publishWave = 1  // when the pack reaches the registry
	killswitch  = "iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.example"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The worm: resolves the killswitch, stands down if it exists,
	// otherwise drops its copy and scans port 445.
	gen := malware.NewGenerator(seed)
	worm, err := gen.WormSample(killswitch)
	if err != nil {
		return err
	}
	sc := malware.WormScenario(killswitch)
	fmt.Printf("worm: %s (md5 %s), killswitch %s\n\n", worm.Name(), worm.MD5, killswitch)

	// Patient zero is captured and analysed under the pseudo-C2
	// scenario. The killswitch lookup fails naturally (nobody registered
	// the domain), so the force-success mutation deviates the execution
	// — the worm exits before any payload — and Phase II emits a
	// simulate-presence domain vaccine.
	pipeline := core.New(core.Config{Seed: seed, C2: sc})
	res, err := pipeline.Analyze(worm)
	if err != nil {
		return err
	}
	var vs []vaccine.Vaccine
	for _, v := range res.Vaccines {
		if v.Resource == winenv.KindDomain {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return fmt.Errorf("no domain vaccine extracted (got %d vaccines)", len(res.Vaccines))
	}
	pack := &vaccine.Pack{Generator: "conficker_worm example", Vaccines: vs}
	if err := pack.Verify(); err != nil {
		return fmt.Errorf("vaccine pack failed verification: %w", err)
	}
	for _, v := range vs {
		fmt.Printf("extracted vaccine: %s\n", v.String())
	}
	fmt.Printf("  (deploys as a DNS sinkhole registration: resolving the\n")
	fmt.Printf("   killswitch convinces the worm the net is watching)\n\n")

	// The epidemic race: the pack is published at wave 1; each fleet's
	// delta sync lands after a different latency. Latency -1 is the
	// unprotected control.
	fmt.Printf("%d hosts, %d waves, pack published at wave %d\n\n", hosts, waves, publishWave)
	fmt.Printf("%-10s", "sync lat.")
	for w := 0; w <= waves; w++ {
		fmt.Printf(" %4s", fmt.Sprintf("w%d", w))
	}
	fmt.Printf(" %9s\n", "repelled")
	for _, lat := range []int{0, 2, 4, -1} {
		cfg := fleet.WormConfig{
			Hosts:       hosts,
			Waves:       waves,
			Worm:        worm,
			Scenario:    sc,
			Seed:        seed,
			PublishWave: publishWave,
			SyncLatency: lat,
		}
		if lat >= 0 {
			cfg.Vaccines = vs
		}
		r, err := fleet.SimulateWorm(cfg)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("+%d waves", lat)
		if lat < 0 {
			label = "control"
		}
		fmt.Printf("%-10s", label)
		for _, n := range r.Curve {
			fmt.Printf(" %4d", n)
		}
		fmt.Printf(" %9d\n", r.Repelled)
	}
	fmt.Printf("\nthe curve flattens at publish+latency: every synced host answers the\n")
	fmt.Printf("killswitch lookup, so the worm stands down instead of detonating\n")
	return nil
}
