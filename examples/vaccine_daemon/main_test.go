package main

import "testing"

// TestRun keeps the example runnable: it executes the full scenario and
// fails on any error (output goes to stdout, which go test captures).
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
