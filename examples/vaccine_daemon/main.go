// The vaccine daemon: partial-static interception and slice refresh.
//
// Two vaccine classes need a resident daemon (paper §V): partial-static
// identifiers, matched by wildcard pattern at interception time, and
// algorithm-deterministic identifiers, whose per-host values must be
// re-generated when host facts change.
//
// This example generates both kinds from two samples — a worm whose
// marker is "WORMID-<random hex>" and a Conficker-style worm whose
// marker derives from the computer name — installs them in one daemon,
// and demonstrates interception, immunity, and the refresh after the
// machine is renamed.
//
// Run with:
//
//	go run ./examples/vaccine_daemon
package main

import (
	"fmt"
	"log"

	"autovac/internal/core"
	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/exclusive"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

const seed = 11

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	partialWorm := mustBuild(&malware.Spec{
		Name: "hexworm", Category: malware.Worm,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehPartialMutex, ID: "WORMID"},
			{Kind: malware.BehNetworkCC, ID: "hexworm-p2p.example", Aux: "445", Count: 3},
		},
	})
	algoWorm := mustBuild(&malware.Spec{
		Name: "nameworm", Category: malware.Worm,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehAlgoMutex, ID: `Global\%s-13`},
			{Kind: malware.BehNetworkCC, ID: "nameworm-cc.example", Aux: "445", Count: 3},
		},
	})

	benign, err := malware.BenignCorpus()
	if err != nil {
		return err
	}
	index, err := exclusive.BuildIndex(benign, seed)
	if err != nil {
		return err
	}
	pipeline := core.New(core.Config{Seed: seed, Index: index})

	host := winenv.New(winenv.DefaultIdentity())
	daemon := pipeline.NewDaemonFor(host)

	for _, sample := range []*malware.Sample{partialWorm, algoWorm} {
		// SafeAnalyze contains per-sample panics: one hostile sample
		// costs its own vaccines, not the other worm's protection.
		res, err := pipeline.SafeAnalyze(sample)
		if err != nil {
			fmt.Printf("skipping %s: analysis failed (isolated): %v\n", sample.Name(), err)
			continue
		}
		for _, v := range res.Vaccines {
			if err := daemon.Install(v); err != nil {
				return err
			}
			target := v.Identifier
			if v.Class == determinism.PartialStatic {
				target = v.Pattern
			}
			fmt.Printf("installed %-28s [%s, %s]\n", target, v.Class, v.Delivery)
		}
	}

	// Both worms attack the protected host.
	for _, sample := range []*malware.Sample{partialWorm, algoWorm} {
		tr, err := emu.Run(sample.Program, host, emu.Options{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s on protected host: exit %v, %d C&C rounds\n",
			sample.Name(), tr.Exit, len(tr.CallsTo("send")))
		if tr.Exit == trace.ExitProcess {
			fmt.Println("  -> believed the machine was already infected; gave up")
		}
	}
	inspected, intercepted := daemon.Stats()
	fmt.Printf("\ndaemon stats: %d operations inspected, %d intercepted\n",
		inspected, intercepted)

	// The machine is renamed: the algorithm-deterministic marker must be
	// re-generated (the daemon's periodic refresh, §V).
	id := host.Identity()
	fmt.Printf("\nrenaming host %s -> ACCOUNTING-07\n", id.ComputerName)
	id.ComputerName = "ACCOUNTING-07"
	host.SetIdentity(id)

	n, err := daemon.Refresh()
	if err != nil {
		return err
	}
	fmt.Printf("daemon refresh: %d vaccine(s) re-generated\n", n)
	fmt.Printf("new marker present: %v\n",
		host.Exists(winenv.KindMutex, `Global\ACCOUNTING-07-13`))

	tr, err := emu.Run(algoWorm.Program, host, emu.Options{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%s after rename: exit %v (still immune)\n", algoWorm.Name(), tr.Exit)
	return nil
}

func mustBuild(spec *malware.Spec) *malware.Sample {
	prog := malware.MustEmit(spec)
	return &malware.Sample{Spec: spec, Program: prog, MD5: spec.Name}
}
