// The Zeus sdra64.exe file vaccine — the paper's §VI-D case study.
//
// "One vaccine for Zeus/Zbot family is a static file named sdra64.exe
// which is stored in the system32 directory. ... We deliver a vaccine
// by deliberately creating sdra64.exe at an end host. This file is
// owned by a super user and does not allow any creation operation by
// others. In this way, our vaccine prevents Zeus's attempt to start the
// malicious process."
//
// This example shows exactly that mechanism at the resource level: the
// privilege-restricted placeholder file, the denied CreateFile, and the
// resulting termination of the whole infection chain (process
// hijacking, Winlogon persistence, C&C traffic).
//
// Run with:
//
//	go run ./examples/zeus_filevaccine
package main

import (
	"fmt"
	"log"

	"autovac/internal/emu"
	"autovac/internal/malware"
	"autovac/internal/winenv"
)

const sdra64 = `C:\Windows\system32\sdra64.exe`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	zeus, err := malware.NewGenerator(42).FamilySample(malware.Zeus)
	if err != nil {
		return err
	}

	// --- Unprotected machine ---
	clean := winenv.New(winenv.DefaultIdentity())
	trClean, err := emu.Run(zeus.Program, clean, emu.Options{Seed: 42})
	if err != nil {
		return err
	}
	fmt.Println("unprotected machine:")
	fmt.Printf("  exit:               %v\n", trClean.Exit)
	fmt.Printf("  sdra64.exe dropped: %v\n", clean.Exists(winenv.KindFile, sdra64))
	fmt.Printf("  winlogon injected:  %v\n", len(trClean.CallsTo("WriteProcessMemory")) > 0)
	fmt.Printf("  shell persistence:  %v\n", len(trClean.CallsTo("RegSetValueExA")) > 0)
	fmt.Printf("  C&C rounds:         %d\n", len(trClean.CallsTo("send")))

	// --- Vaccinated machine ---
	// The vaccine: a super-user-owned sdra64.exe placeholder that
	// refuses every operation from other principals.
	protected := winenv.New(winenv.DefaultIdentity())
	protected.Inject(winenv.Resource{
		Kind:  winenv.KindFile,
		Name:  sdra64,
		Owner: "vaccine",
		ACL:   winenv.DenyAll(),
	})

	// Zeus attempts its drop: the create is denied at the ACL.
	attempt := protected.Do(winenv.Request{
		Kind: winenv.KindFile, Op: winenv.OpCreate, Name: sdra64, Principal: zeus.Name(),
	})
	fmt.Println("\nvaccinated machine:")
	fmt.Printf("  CreateFile(sdra64.exe) by malware: ok=%v lasterror=%v\n",
		attempt.OK, attempt.Err)

	trProt, err := emu.Run(zeus.Program, protected, emu.Options{Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("  exit:               %v (code %d)\n", trProt.Exit, trProt.ExitCode)
	fmt.Printf("  winlogon injected:  %v\n", len(trProt.CallsTo("WriteProcessMemory")) > 0)
	fmt.Printf("  shell persistence:  %v\n", len(trProt.CallsTo("RegSetValueExA")) > 0)
	fmt.Printf("  C&C rounds:         %d\n", len(trProt.CallsTo("send")))
	fmt.Printf("  API calls:          %d (vs %d on the clean machine)\n",
		trProt.NativeCallCount(), trClean.NativeCallCount())

	// The placeholder remains intact: the malware cannot remove it.
	del := protected.Do(winenv.Request{
		Kind: winenv.KindFile, Op: winenv.OpDelete, Name: sdra64, Principal: zeus.Name(),
	})
	fmt.Printf("  malware delete attempt: ok=%v lasterror=%v\n", del.OK, del.Err)
	if r := protected.Lookup(winenv.KindFile, sdra64); r != nil {
		fmt.Printf("  vaccine file still owned by %q\n", r.Owner)
	}
	return nil
}
