// Quickstart: the complete AUTOVAC loop on one sample.
//
// This example captures a Zeus-like sample "at the initial infection
// stage" (paper §II-A, Use Case), extracts its system resource
// constraints, generates vaccines, injects them into a clean machine,
// and demonstrates that the same sample can no longer infect it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"autovac/internal/core"
	"autovac/internal/emu"
	"autovac/internal/exclusive"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 42

	// 1. Obtain the sample (in the paper: captured from the wild; here:
	//    the synthetic Zeus template).
	sample, err := malware.NewGenerator(seed).FamilySample(malware.Zeus)
	if err != nil {
		return err
	}
	fmt.Printf("sample: %s (%s, %s), md5 %s\n\n",
		sample.Name(), sample.Spec.Category, sample.Spec.Family, sample.MD5)

	// 2. Build the analysis pipeline: benign index for exclusiveness
	//    analysis, clinic suite for the final safety check.
	benign, err := malware.BenignCorpus()
	if err != nil {
		return err
	}
	index, err := exclusive.BuildIndex(benign, seed)
	if err != nil {
		return err
	}
	pipeline := core.New(core.Config{Seed: seed, Index: index, Benign: benign[:10]})

	// 3. Phase-I: profile the sample under taint analysis.
	profile, err := pipeline.Phase1(sample)
	if err != nil {
		return err
	}
	fmt.Printf("Phase-I: %d resource-API occurrences, %d feed branch predicates\n",
		profile.ResourceOccurrences, profile.SensitiveOccurrences)
	for _, c := range profile.Candidates {
		fmt.Printf("  candidate: %-18s %-8s %q\n", c.Call.API, c.Call.Op, c.Call.Identifier)
	}

	// 4. Phase-II: exclusiveness, impact, determinism, clinic.
	result, err := pipeline.Phase2(profile)
	if err != nil {
		return err
	}
	fmt.Printf("\nPhase-II: %d vaccines\n", len(result.Vaccines))
	for _, v := range result.Vaccines {
		fmt.Printf("  %s\n", v.String())
	}
	for _, r := range result.Rejected {
		fmt.Printf("  rejected %q at %s: %s\n", r.Candidate.Call.Identifier, r.Stage, r.Reason)
	}

	// 5. Phase-III: immunize a clean machine.
	host := winenv.New(winenv.DefaultIdentity())
	daemon := pipeline.NewDaemonFor(host)
	for _, v := range result.Vaccines {
		if err := daemon.Install(v); err != nil {
			return err
		}
	}
	fmt.Printf("\nPhase-III: %d vaccines deployed on %s\n",
		daemon.VaccineCount(), host.Identity().ComputerName)

	// 6. The same sample attacks the vaccinated machine.
	normal, err := emu.Run(sample.Program, winenv.New(winenv.DefaultIdentity()), emu.Options{Seed: seed})
	if err != nil {
		return err
	}
	attacked, err := emu.Run(sample.Program, host, emu.Options{Seed: seed})
	if err != nil {
		return err
	}
	verdict := impact.Classify(attacked, normal)
	fmt.Printf("\nre-infection attempt:\n")
	fmt.Printf("  clean host:      %3d API calls, exit %v\n", normal.NativeCallCount(), normal.Exit)
	fmt.Printf("  vaccinated host: %3d API calls, exit %v\n", attacked.NativeCallCount(), attacked.Exit)
	fmt.Printf("  effect:          %v %v\n", verdict.Primary, verdict.Effects)
	fmt.Printf("  BDR:             %.0f%%\n", 100*impact.BDR(normal, attacked))
	if attacked.Exit == trace.ExitProcess {
		fmt.Println("  -> the malware terminated itself; the machine is immune")
	}
	return nil
}
